"""Benchmark harness utilities: result tables and parameter sweeps.

Each experiment in :mod:`repro.bench.experiments` returns a
:class:`Table`; the ``benchmarks/`` pytest-benchmark files print it and
time the underlying runs. EXPERIMENTS.md records the printed rows.
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable

from repro.errors import BenchmarkError


@dataclass
class Table:
    """A printable result table for one experiment."""

    title: str
    columns: list[str]
    rows: list[list[Any]] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add(self, *values: Any) -> None:
        if len(values) != len(self.columns):
            raise BenchmarkError(
                f"{self.title}: row has {len(values)} values for "
                f"{len(self.columns)} columns")
        self.rows.append(list(values))

    def note(self, text: str) -> None:
        self.notes.append(text)

    def column(self, name: str) -> list[Any]:
        try:
            index = self.columns.index(name)
        except ValueError:
            raise BenchmarkError(
                f"{self.title}: no column {name!r}") from None
        return [row[index] for row in self.rows]

    def render(self) -> str:
        def fmt(value: Any) -> str:
            if isinstance(value, float):
                return f"{value:.6g}"
            return str(value)

        cells = [[fmt(v) for v in row] for row in self.rows]
        widths = [max(len(self.columns[i]),
                      *(len(row[i]) for row in cells)) if cells
                  else len(self.columns[i])
                  for i in range(len(self.columns))]
        lines = [f"== {self.title} =="]
        header = " | ".join(c.ljust(w) for c, w in zip(self.columns, widths))
        lines.append(header)
        lines.append("-+-".join("-" * w for w in widths))
        for row in cells:
            lines.append(" | ".join(v.ljust(w) for v, w in zip(row, widths)))
        for note in self.notes:
            lines.append(f"  note: {note}")
        return "\n".join(lines)

    def show(self) -> None:
        print()
        print(self.render())


def emit_json(table: Table, path: str | pathlib.Path,
              experiment: str, **extra: Any) -> dict:
    """Write a table as machine-readable JSON so successive PRs can track
    the perf trajectory. Returns the payload that was written."""
    payload: dict[str, Any] = {
        "experiment": experiment,
        "title": table.title,
        "columns": table.columns,
        "rows": table.rows,
        "notes": table.notes,
        **extra,
    }
    pathlib.Path(path).write_text(json.dumps(payload, indent=2,
                                             sort_keys=False) + "\n",
                                  encoding="utf-8")
    return payload


def profile_call(fn: Callable[..., Any], *args: Any, top: int = 20,
                 sort: str = "cumulative", **kwargs: Any) -> Any:
    """Run ``fn(*args, **kwargs)`` under cProfile and print the top
    hotspots, so perf work is profile-driven rather than guessed.

    Prints the ``top`` entries sorted by ``sort`` (default cumulative
    time) to stdout and returns whatever ``fn`` returned. Used by the
    ``--profile`` flags of ``python -m repro.bench`` and
    ``python -m repro.bench.soak``.
    """
    import cProfile
    import pstats

    profiler = cProfile.Profile()
    result = profiler.runcall(fn, *args, **kwargs)
    print(f"\n== cProfile: top {top} by {sort} ==")
    pstats.Stats(profiler).sort_stats(sort).print_stats(top)
    return result


def sweep(values: Iterable[Any], fn: Callable[[Any], Any]) -> list[Any]:
    """Run ``fn`` once per value; returns results in order."""
    return [fn(value) for value in values]


def ratio(a: float, b: float) -> float:
    """Safe ratio for table cells."""
    return a / b if b else float("inf")
