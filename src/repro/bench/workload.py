"""Open-loop workload generator for overload experiments (E13).

The closed-loop benches (E3/E6/E12) let the raiser wait on the system —
offered load collapses to whatever the handlers can absorb, so the knee
of the latency curve is invisible. This module generates **open-loop**
arrival schedules: the offered rate is fixed ahead of time and arrivals
fire regardless of how far behind the handlers are, which is the regime
admission control and flow control exist for.

A schedule is a precomputed, deterministic list of :class:`Arrival`
records drawn from one seeded stream before the run starts (the chaos
discipline: randomness up front, bit-identical same-seed replays). The
generator composes four traffic shapes:

* **Poisson** arrivals — exponential gaps via Lewis-Shedler thinning,
  exact even when the instantaneous rate varies;
* **bursty** arrivals — an on/off duty cycle multiplying the base rate
  by ``burst_factor`` for the first ``burst_fraction`` of every
  ``burst_cycle`` seconds (pager-style fault storms);
* **diurnal ramps** — a sinusoidal modulation over the schedule's span
  (trough at both ends, peak in the middle) scaled by ``diurnal_depth``;
* **Zipf-skewed popularity** — target objects drawn from a Zipf(s) law,
  so hot objects dominate the way they do in the pager/search apps;
  every ``fanout_every``-th arrival is a group fan-out storm instead
  (the search app's BOUND-broadcast shape).

Tenancy: each arrival carries a raiser node drawn from ``tenants`` with
relative weights ``tenant_rates`` — the hot-tenant knob that the
weighted-fair admission gate (``tenant_weights``) is tested against.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Any, Callable

from repro.errors import BenchmarkError

#: arrival-process shapes understood by :func:`build_schedule`
ARRIVAL_KINDS = ("poisson", "bursty", "uniform")

#: target index marking a group fan-out storm instead of an object post
FANOUT = -1


@dataclass(frozen=True)
class Arrival:
    """One generated post: when, from whom, at what."""

    at: float      #: offset from schedule start, virtual seconds
    tenant: int    #: raiser node id
    target: int    #: object index, or :data:`FANOUT` for a group storm


@dataclass
class WorkloadSpec:
    """One open-loop traffic configuration."""

    seed: int = 0
    #: span of the arrival schedule, virtual seconds
    duration: float = 10.0
    #: mean offered rate, posts per virtual second (time-averaged)
    rate: float = 200.0
    arrival: str = "poisson"
    #: bursty shape: rate multiplier while the duty cycle is "on"
    burst_factor: float = 8.0
    #: fraction of each cycle spent "on"
    burst_fraction: float = 0.125
    #: duty-cycle period, virtual seconds
    burst_cycle: float = 1.0
    #: 0 = flat; 1 = rate swings from 0 (edges) to 2x mean (midpoint)
    diurnal_depth: float = 0.0
    #: object population size for Zipf popularity draws
    n_targets: int = 8
    #: Zipf skew (0 = uniform popularity)
    zipf_s: float = 1.1
    #: every Nth arrival is a group fan-out storm (0 = never)
    fanout_every: int = 0
    #: raiser nodes; one entry per tenant
    tenants: tuple = (0,)
    #: relative tenant rates (defaults to equal shares)
    tenant_rates: tuple = ()

    def __post_init__(self) -> None:
        if self.arrival not in ARRIVAL_KINDS:
            raise BenchmarkError(
                f"arrival must be one of {ARRIVAL_KINDS}, "
                f"got {self.arrival!r}")
        if self.duration <= 0 or self.rate <= 0:
            raise BenchmarkError("duration and rate must be positive")
        if not 0.0 <= self.diurnal_depth <= 1.0:
            raise BenchmarkError("diurnal_depth must be within [0, 1]")
        if not 0.0 < self.burst_fraction <= 1.0:
            raise BenchmarkError("burst_fraction must be within (0, 1]")
        if self.burst_factor < 1.0 or self.burst_cycle <= 0:
            raise BenchmarkError("burst_factor >= 1 and burst_cycle > 0 "
                                 "required")
        if self.n_targets < 1 or not self.tenants:
            raise BenchmarkError("need at least one target and one tenant")
        if self.tenant_rates and len(self.tenant_rates) != len(self.tenants):
            raise BenchmarkError("tenant_rates must match tenants")


def zipf_weights(n: int, s: float) -> list[float]:
    """Unnormalised Zipf(s) weights over ranks ``0..n-1``."""
    return [1.0 / (rank + 1) ** s for rank in range(n)]


def rate_at(spec: WorkloadSpec, t: float) -> float:
    """Instantaneous offered rate at offset ``t``.

    The shape multipliers are normalised so the *time-averaged* rate
    stays ``spec.rate`` whatever the modulation — offered-load sweeps
    compare like with like across arrival shapes.
    """
    rate = spec.rate
    if spec.arrival == "bursty":
        # duty cycle with unit mean: on-multiplier f, off-multiplier
        # chosen so frac*on + (1-frac)*off == 1
        frac, factor = spec.burst_fraction, spec.burst_factor
        on = factor / (frac * factor + (1.0 - frac))
        off = 1.0 / (frac * factor + (1.0 - frac))
        phase = math.fmod(t, spec.burst_cycle) / spec.burst_cycle
        rate *= on if phase < frac else off
    if spec.diurnal_depth:
        # sin^2 has mean 1/2 over the span: depth*2*sin^2 keeps mean 1
        rate *= ((1.0 - spec.diurnal_depth)
                 + 2.0 * spec.diurnal_depth
                 * math.sin(math.pi * t / spec.duration) ** 2)
    return rate


def peak_rate(spec: WorkloadSpec) -> float:
    """Upper bound on :func:`rate_at` (the thinning envelope)."""
    rate = spec.rate
    if spec.arrival == "bursty":
        frac, factor = spec.burst_fraction, spec.burst_factor
        rate *= factor / (frac * factor + (1.0 - frac))
    if spec.diurnal_depth:
        rate *= (1.0 + spec.diurnal_depth)
    return rate


def build_schedule(spec: WorkloadSpec) -> list[Arrival]:
    """Generate the full arrival schedule, deterministically.

    Arrival *times* come first from one stream (thinned inhomogeneous
    Poisson, or an evenly spaced grid for ``uniform``), then tenants and
    targets are drawn per arrival from separate streams, so changing the
    popularity knobs never perturbs the timing sequence and vice versa.
    """
    times = _arrival_times(spec)
    tenant_rng = random.Random(f"{spec.seed}:workload:tenant")
    target_rng = random.Random(f"{spec.seed}:workload:target")
    tenants = list(spec.tenants)
    tenant_weights = (list(spec.tenant_rates) if spec.tenant_rates
                      else [1.0] * len(tenants))
    target_weights = zipf_weights(spec.n_targets, spec.zipf_s)
    targets = range(spec.n_targets)
    schedule = []
    for index, at in enumerate(times):
        tenant = (tenants[0] if len(tenants) == 1 else
                  tenant_rng.choices(tenants, weights=tenant_weights)[0])
        if spec.fanout_every and (index + 1) % spec.fanout_every == 0:
            target = FANOUT
        else:
            target = target_rng.choices(targets,
                                        weights=target_weights)[0]
        schedule.append(Arrival(at=at, tenant=tenant, target=target))
    return schedule


def _arrival_times(spec: WorkloadSpec) -> list[float]:
    if spec.arrival == "uniform":
        gap = 1.0 / spec.rate
        count = int(spec.duration * spec.rate)
        return [i * gap for i in range(count)]
    # Lewis-Shedler thinning: candidates at the peak rate, kept with
    # probability rate(t)/peak — an exact inhomogeneous Poisson draw.
    rng = random.Random(f"{spec.seed}:workload:times")
    peak = peak_rate(spec)
    times = []
    t = rng.expovariate(peak)
    while t < spec.duration:
        if rng.random() * peak <= rate_at(spec, t):
            times.append(t)
        t += rng.expovariate(peak)
    return times


def drive(cluster: Any, schedule: list[Arrival],
          fire: Callable[[Arrival], None],
          t0: float | None = None) -> float:
    """Feed a schedule into a running cluster, open loop.

    Schedules ``fire(arrival)`` at ``t0 + arrival.at`` for every
    arrival, using a self-rescheduling pump (one pending simulator
    callback at a time, the soak-feeder idiom) so a hundred-thousand-
    arrival schedule does not pre-populate the event queue. Returns the
    schedule's start time.
    """
    sim = cluster.sim
    start = cluster.now if t0 is None else t0
    count = len(schedule)

    def pump(i: int) -> None:
        fire(schedule[i])
        # fire everything sharing this instant before rescheduling
        while i + 1 < count and schedule[i + 1].at <= schedule[i].at:
            i += 1
            fire(schedule[i])
        if i + 1 < count:
            sim.call_at(start + schedule[i + 1].at, pump, i + 1)

    if schedule:
        sim.call_at(start + schedule[0].at, pump, 0)
    return start


def summarize(schedule: list[Arrival],
              duration: float | None = None) -> dict[str, Any]:
    """Deterministic shape summary of a schedule (for payloads/tests)."""
    if not schedule:
        return {"arrivals": 0, "offered_rate": 0.0, "fanouts": 0,
                "tenant_counts": {}, "hot_target_share": 0.0}
    span = duration if duration is not None else schedule[-1].at
    tenant_counts: dict[int, int] = {}
    target_counts: dict[int, int] = {}
    fanouts = 0
    for arrival in schedule:
        tenant_counts[arrival.tenant] = \
            tenant_counts.get(arrival.tenant, 0) + 1
        if arrival.target == FANOUT:
            fanouts += 1
        else:
            target_counts[arrival.target] = \
                target_counts.get(arrival.target, 0) + 1
    posts = len(schedule)
    hot = max(target_counts.values()) if target_counts else 0
    return {
        "arrivals": posts,
        "offered_rate": round(posts / span, 2) if span else 0.0,
        "fanouts": fanouts,
        "tenant_counts": dict(sorted(tenant_counts.items())),
        "hot_target_share": round(hot / max(1, posts - fanouts), 4),
    }
