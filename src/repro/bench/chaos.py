"""Deterministic chaos harness: event delivery under drops, duplicates,
partitions and node crashes.

The paper motivates asynchronous events with the observation that in a
distributed system "unexpected occurrences are far more probable than in
centralized systems" (§1) but leaves fault tolerance out of scope (§7.2).
This harness closes the loop for the reproduction: it runs an
event-raising workload against a seeded schedule of network faults and
node crash/recover cycles, and checks the delivery guarantees the
reliability layer is supposed to provide:

* **exactly-once execution** — no post's handler runs twice, however many
  duplicates the wire creates;
* **no lost-or-hung raise** — every post either executes its handler or
  surfaces a dead-target/undeliverable notice to the raiser in bounded
  time;
* **convergence after heal** — once partitions heal and crashed nodes
  recover, probe posts to every target execute again.

Everything is driven by virtual time and seeded RNG streams, so two runs
with the same :class:`ChaosSpec` are bit-identical — the
:attr:`ChaosReport.digest` hash makes that checkable in one comparison.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass, field
from typing import Any

from repro import Cluster, ClusterConfig, Decision, DistObject, entry
from repro.bench.harness import Table

CHAOS_EVENT = "CHAOS"


class ChaosHandlerFault(Exception):
    """The injected handler bug (raise / poison faults)."""


def _inject_fault(kind: str | None, pid: Any, tripped: set,
                  fault_counts: dict[str, int]) -> bool:
    """Shared fault gate for both target kinds; runs before the handler
    records its execution.

    Returns True when the handler should *hang* after recording. Raise
    faults are transient (first attempt only — a retried run succeeds);
    poison faults raise on every attempt, so only quarantine ends them.
    """
    if kind == "poison":
        fault_counts["poison"] += 1
        raise ChaosHandlerFault(f"poison post {pid}")
    if kind == "raise" and pid not in tripped:
        tripped.add(pid)
        fault_counts["raise"] += 1
        raise ChaosHandlerFault(f"transient fault on post {pid}")
    if kind == "hang":
        fault_counts["hang"] += 1
        return True
    return False


class ChaosTarget(DistObject):
    """Long-lived thread body absorbing chaos posts.

    The handler records its execution *first*, so a crash that kills the
    thread mid-handler still counts the run (the invariant is at-most-once
    execution, and the raiser may additionally get a notice for the same
    post — an honest crash race, not a bug). Injected faults fire
    *before* the record (except hang, which records then never returns —
    the watchdog's cancellation must not un-count a run that happened).
    """

    @entry
    def serve(self, ctx, executions, hold, faults, tripped, fault_counts):
        def on_chaos(hctx, block):
            pid = block.user_data
            hang = _inject_fault(faults.get(pid), pid, tripped,
                                 fault_counts)
            executions[pid] = executions.get(pid, 0) + 1
            if hang:
                yield hctx.sleep(1e9)
            yield hctx.compute(1e-6)
            return Decision.RESUME

        yield ctx.attach_handler(CHAOS_EVENT, on_chaos)
        yield ctx.sleep(hold)
        return "done"


class DurableChaosTarget(DistObject):
    """Persistent object absorbing durable chaos posts.

    The durable variant targets *objects*, not threads: objects survive
    node crashes (§2), so a journaled post can be redelivered after
    recovery instead of degrading to a §7.2 notice. The handler is
    deliberately slow relative to the post interval so the master-thread
    queue builds depth — crashes then catch posts *queued but not yet
    executed*, the exact window PR 2 lost. It records its execution
    first, mirroring :class:`ChaosTarget` (the receiver journals the
    applied marker atomically with this first statement, making the
    count exactly-once across redeliveries).

    The handler is registered dynamically (not via ``@on_event``) so
    chaos also exercises the persistent handler registry: a crash wipes
    the registration and recovery must replay it before redelivered
    posts arrive, or they would hit the OBJ_REJECT default.
    """

    def __init__(self, executions, faults=None, tripped=None,
                 fault_counts=None):
        super().__init__()
        self.executions = executions
        # identity matters: the harness fills this dict after creation
        self.faults = faults if faults is not None else {}
        self.tripped = tripped if tripped is not None else set()
        self.fault_counts = fault_counts if fault_counts is not None else {}

    def on_chaos(self, ctx, block):
        pid = block.user_data
        hang = _inject_fault(self.faults.get(pid), pid, self.tripped,
                             self.fault_counts)
        self.executions[pid] = self.executions.get(pid, 0) + 1
        if hang:
            yield ctx.sleep(1e9)
        yield ctx.compute(5e-3)


@dataclass
class ChurnSpec:
    """Scheduled membership churn riding on a chaos run.

    One departure fires every ``period`` (virtual seconds): a seeded
    coin picks a graceful *leave* (announced through gossip before the
    fail-stop) or an abrupt *crash* with probability ``leave_fraction``
    vs the rest; the node rejoins ``down_time`` later with a bumped
    incarnation. Departures that would push the number of
    simultaneously-down nodes past ``max_down`` (or hit an
    already-down node) are skipped, so the cluster never churns itself
    below quorum-of-targets.
    """

    period: float = 0.4
    down_time: float = 0.5
    leave_fraction: float = 0.5
    max_down: int = 4


@dataclass
class ChaosSpec:
    """One seeded chaos scenario."""

    seed: int = 0
    locator: str = "path"
    n_nodes: int = 4
    #: number of chaos posts raised from node 0
    posts: int = 150
    post_interval: float = 0.02
    drop_rate: float = 0.1
    duplicate_rate: float = 0.05
    #: crash one target node every ``crash_period`` (None = no crashes)
    crash_period: float | None = 0.8
    #: how long a crashed node stays down before recovering
    down_time: float = 0.5
    #: isolate one target node every ``partition_period`` (None = never)
    partition_period: float | None = None
    partition_length: float = 0.3
    #: virtual seconds to keep running after the last post so retransmits,
    #: give-ups and the post deadline all resolve
    settle: float = 20.0
    #: §7.2 backstop: a post unresolved after this long is undeliverable
    post_deadline: float = 1.5
    max_retransmits: int = 10
    retransmit_base: float = 4e-3
    #: durable mode: journal posts write-ahead, target persistent objects
    #: instead of threads, and require zero lost posts (no notices)
    durable: bool = False
    checkpoint_interval: int | None = 64
    outbox_flush_interval: float | None = 0.25
    replay_cost: float = 2e-5
    #: transport fast path knobs (E10): same guarantees on or off, only
    #: envelope/commit counts change — the invariants must hold either way
    ack_delay: float = 1e-3
    ack_piggyback: bool = True
    journal_group_commit: bool = True
    #: handler-fault injection rates by kind ("hang" / "raise" /
    #: "poison"); None = healthy handlers, the pre-supervision behaviour
    handler_faults: dict[str, float] | None = None
    #: supervision knobs (E11); all-defaults = supervision off
    handler_deadline: float | None = None
    handler_retries: int = 0
    breaker_threshold: int | None = None
    poison_threshold: int | None = None
    heartbeat_interval: float | None = None
    #: scheduler backend under test ("heap" | "wheel"); the differential
    #: tests run the same spec on both and require identical digests
    scheduler: str = "heap"
    #: overload-control knobs (E13). ``overload`` multiplies the offered
    #: rate by compressing the post interval (2.0 = the same posts in
    #: half the time); the admission/flow knobs default off, so default
    #: specs stay digest-identical to pre-overload runs
    overload: float = 1.0
    admission_high: int | None = None
    admission_low: int | None = None
    overload_policy: str = "drop"
    flow_credits: int | None = None
    #: SWIM gossip membership knobs (E16); all-defaults = membership off
    swim_interval: float | None = None
    swim_ping_timeout: float | None = None
    swim_suspect_timeout: float | None = None
    swim_piggyback: bool = True
    #: scheduled join/leave/crash/recover churn (None = no churn; the
    #: schedule is drawn from the same seeded stream, and only when set,
    #: so churn-off digests are unchanged)
    churn: ChurnSpec | None = None

    @property
    def effective_post_interval(self) -> float:
        return self.post_interval / self.overload

    @property
    def active_time(self) -> float:
        return self.posts * self.effective_post_interval


@dataclass
class ChaosReport:
    """Outcome of one chaos run, with invariants pre-checked."""

    spec: ChaosSpec
    #: post id -> handler executions (absent = never executed)
    executions: dict[int, int]
    #: post ids whose raiser got a dead-target/undeliverable notice
    notices: set[int]
    #: probe post id -> executions (convergence check after heal)
    probe_executions: dict[int, int]
    crashes: list[tuple[float, int]]
    partitions: list[tuple[float, int]]
    reliability: dict[str, int]
    fault_breakdown: dict[str, dict[str, int]]
    message_stats: dict[str, int]
    dead_targets: int
    undeliverable: int
    p99_latency: float
    virtual_time: float
    #: cluster-wide store counters (all zeros for non-durable runs)
    durability: dict[str, int] = field(default_factory=dict)
    #: post ids quarantined in a dead-letter queue (supervision runs)
    quarantined: set[int] = field(default_factory=set)
    #: handler executions still wedged at end of run (must be 0 when the
    #: watchdog is armed; the unsupervised contrast rows show the hangs)
    hung_handlers: int = 0
    #: supervisor / failure-detector / dead-letter counters
    supervision: dict[str, int] = field(default_factory=dict)
    #: injected handler faults actually hit, by kind
    handler_fault_counts: dict[str, int] = field(default_factory=dict)
    #: one row per recovery replay (node, at, replayed, recovery_time,
    #: restored_objects, pending_redelivery) — the raw material for the
    #: durability bench; derived from state already hashed by ``digest``
    recoveries: list[dict[str, Any]] = field(default_factory=list)
    #: (time, node, "leave"|"crash") per churn departure; the departures
    #: themselves are also logged in ``crashes`` (hashed by ``digest``)
    churn_events: list[tuple[float, int, str]] = field(default_factory=list)
    #: cluster-wide membership counters (empty when SWIM is off)
    membership: dict[str, int] = field(default_factory=dict)
    violations: list[str] = field(default_factory=list)

    @property
    def executed_once(self) -> int:
        return sum(1 for n in self.executions.values() if n == 1)

    @property
    def success_rate(self) -> float:
        return self.executed_once / self.spec.posts if self.spec.posts else 1.0

    @property
    def accounted_rate(self) -> float:
        """Fraction of posts that executed, surfaced a notice, or were
        quarantined (must be 1.0: the zero-lost-or-hung guarantee)."""
        ok = sum(1 for pid in range(self.spec.posts)
                 if self.executions.get(pid, 0) == 1 or pid in self.notices
                 or pid in self.quarantined)
        return ok / self.spec.posts if self.spec.posts else 1.0

    @property
    def retransmits_per_post(self) -> float:
        if not self.spec.posts:
            return 0.0
        return self.reliability.get("retransmits", 0) / self.spec.posts

    @property
    def digest(self) -> str:
        """Hash of every observable outcome; equal for same-seed runs."""
        material = repr((
            sorted(self.executions.items()),
            sorted(self.notices),
            sorted(self.probe_executions.items()),
            self.crashes,
            self.partitions,
            sorted(self.reliability.items()),
            sorted(self.message_stats.items()),
            sorted(self.durability.items()),
            self.dead_targets,
            self.undeliverable,
            round(self.virtual_time, 9),
        ))
        return hashlib.sha256(material.encode()).hexdigest()


def _check_invariants(spec: ChaosSpec, executions: dict[int, int],
                      notices: set[int],
                      probe_executions: dict[int, int],
                      n_probes: int,
                      durability: dict[str, int] | None = None,
                      quarantined: frozenset | set = frozenset(),
                      hung_handlers: int = 0) -> list[str]:
    violations = []
    for pid in range(spec.posts):
        ran = executions.get(pid, 0)
        if ran > 1:
            violations.append(
                f"post {pid}: handler executed {ran} times (duplicate run)")
        if pid in quarantined and ran != 0:
            violations.append(
                f"post {pid}: quarantined after executing "
                f"(double accounting)")
        if spec.durable:
            # Durable posts to persistent objects have no notice escape
            # hatch: every journaled post must execute exactly once — or
            # be quarantined by the poison policy, never silently lost.
            if ran != 1 and pid not in quarantined:
                violations.append(
                    f"post {pid}: durable post executed {ran} times "
                    f"(journaled post lost)")
        elif ran == 0 and pid not in notices and pid not in quarantined:
            violations.append(
                f"post {pid}: neither executed, noticed nor quarantined "
                f"(lost/hung)")
    for pid in range(n_probes):
        ran = probe_executions.get(pid, 0)
        if ran != 1:
            violations.append(
                f"probe {pid}: executed {ran} times after heal "
                f"(no convergence)")
    if spec.durable and durability is not None:
        if durability.get("pending", 0) != 0:
            violations.append(
                f"outbox not drained: {durability['pending']} journaled "
                f"posts still pending at end of run")
    if hung_handlers:
        violations.append(
            f"{hung_handlers} handler execution(s) still wedged at end "
            f"of run")
    return violations


def run_chaos(spec: ChaosSpec) -> ChaosReport:
    """Run one seeded chaos scenario and return the checked report."""
    cluster = Cluster(ClusterConfig(
        n_nodes=spec.n_nodes, seed=spec.seed, locator=spec.locator,
        reliable_delivery=True, post_deadline=spec.post_deadline,
        max_retransmits=spec.max_retransmits,
        retransmit_base=spec.retransmit_base,
        durable_delivery=spec.durable,
        checkpoint_interval=spec.checkpoint_interval,
        outbox_flush_interval=spec.outbox_flush_interval,
        replay_cost=spec.replay_cost,
        ack_delay=spec.ack_delay, ack_piggyback=spec.ack_piggyback,
        journal_group_commit=spec.journal_group_commit,
        handler_deadline=spec.handler_deadline,
        handler_retries=spec.handler_retries,
        breaker_threshold=spec.breaker_threshold,
        poison_threshold=spec.poison_threshold,
        heartbeat_interval=spec.heartbeat_interval,
        scheduler=spec.scheduler,
        admission_high=spec.admission_high,
        admission_low=spec.admission_low,
        overload_policy=spec.overload_policy,
        flow_credits=spec.flow_credits,
        swim_interval=spec.swim_interval,
        swim_ping_timeout=spec.swim_ping_timeout,
        swim_suspect_timeout=spec.swim_suspect_timeout,
        swim_piggyback=spec.swim_piggyback,
        rpc_default_timeout=0.5, trace_net=False))
    cluster.register_event(CHAOS_EVENT)
    sim, faults = cluster.sim, cluster.fabric.faults

    executions: dict[int, int] = {}
    probe_executions: dict[int, int] = {}
    notices: set[int] = set()

    def on_undeliverable(block: Any, target: Any) -> None:
        if block.event != CHAOS_EVENT:
            return
        pid = block.user_data
        if isinstance(pid, tuple):  # probe posts: ("probe", i)
            return
        notices.add(pid)

    cluster.events.on_undeliverable = on_undeliverable

    # Quarantine is accounted the moment it happens: the dead-letter
    # queue itself is volatile kernel memory in non-durable runs, so a
    # later crash of the quarantining node may wipe the entry — but the
    # post's *outcome* (quarantined, traced, counted) already happened.
    quarantined: set[int] = set()

    def on_quarantine(dead: Any) -> None:
        if (dead.block.event == CHAOS_EVENT
                and not isinstance(dead.block.user_data, tuple)):
            quarantined.add(dead.block.user_data)

    cluster.events.on_quarantine = on_quarantine

    # One target per non-raiser node. Default mode: a long-lived thread,
    # spawned on its home node so it never migrates (in-flight thread
    # state is not what this harness stresses). Durable mode: a
    # persistent object with a dynamically registered handler — threads
    # die with their node, objects do not, and only objects can honour
    # the zero-lost-posts guarantee. Node 0 raises and never crashes.
    target_nodes = list(range(1, spec.n_nodes))
    slots: dict[int, Any] = {}
    #: pid -> injected fault kind; shared mutable state for the targets
    fault_kinds: dict[int, str] = {}
    tripped: set[int] = set()
    fault_counts = {"hang": 0, "raise": 0, "poison": 0}
    if spec.durable:
        caps = {node: cluster.create_object(DurableChaosTarget, executions,
                                            fault_kinds, tripped,
                                            fault_counts, node=node)
                for node in target_nodes}
        for node in target_nodes:
            cluster.kernels[node].objects.register_object_handler(
                caps[node].oid, CHAOS_EVENT, "on_chaos")
    else:
        caps = {node: cluster.create_object(ChaosTarget, node=node)
                for node in target_nodes}
        slots = {node: cluster.spawn(caps[node], "serve", executions, 1e9,
                                     fault_kinds, tripped, fault_counts,
                                     at=node) for node in target_nodes}
    cluster.run(until=0.1)  # fault-free setup: handlers attach

    # Everything below is precomputed from one seeded stream and then
    # scheduled in virtual time — the run itself makes no random choices.
    rng = random.Random(spec.seed ^ 0x5EED)
    faults.drop_rate = spec.drop_rate
    faults.duplicate_rate = spec.duplicate_rate

    t0 = cluster.now
    post_targets = [rng.choice(target_nodes) for _ in range(spec.posts)]
    if spec.handler_faults:
        # Same seeded stream, drawn only when the knob is on — with it
        # off the draw sequence (and so the whole run) is unchanged.
        hang = spec.handler_faults.get("hang", 0.0)
        raise_r = spec.handler_faults.get("raise", 0.0)
        poison = spec.handler_faults.get("poison", 0.0)
        for pid in range(spec.posts):
            roll = rng.random()
            if roll < hang:
                fault_kinds[pid] = "hang"
            elif roll < hang + raise_r:
                fault_kinds[pid] = "raise"
            elif roll < hang + raise_r + poison:
                fault_kinds[pid] = "poison"

    def fire_post(pid: int, node: int) -> None:
        target = caps[node] if spec.durable else slots[node].tid
        cluster.events.raise_external(CHAOS_EVENT, target, from_node=0,
                                      user_data=pid)

    for pid, node in enumerate(post_targets):
        sim.call_at(t0 + pid * spec.effective_post_interval,
                    fire_post, pid, node)

    crashes: list[tuple[float, int]] = []

    def crash_and_recover(node: int) -> None:
        crashes.append((round(sim.now - t0, 9), node))
        cluster.crash_node(node)
        sim.call_after(spec.down_time, revive, node)

    def revive(node: int) -> None:
        cluster.recover_node(node)
        # The node's target thread died with it; give later posts a live
        # target again (the dead tid keeps taking posts until then and
        # must produce notices, not hangs). Durable targets are objects:
        # they persist through the crash and need no respawn.
        if not spec.durable:
            slots[node] = cluster.spawn(caps[node], "serve", executions,
                                        1e9, fault_kinds, tripped,
                                        fault_counts, at=node)

    if spec.crash_period is not None:
        t = spec.crash_period
        while t < spec.active_time:
            sim.call_at(t0 + t, crash_and_recover, rng.choice(target_nodes))
            t += spec.crash_period

    # Membership churn: scheduled departures (graceful leave or abrupt
    # crash) with rejoin after down_time. The schedule is drawn from the
    # same seeded stream *only when the knob is on*, so churn-off runs
    # keep their draw sequence (and digests) unchanged. Departures log
    # into ``crashes`` too: the digest covers them.
    churn_events: list[tuple[float, int, str]] = []

    def churn_depart(node: int, kind: str) -> None:
        if cluster.kernels[node].crashed:
            return
        down = sum(1 for n in target_nodes if cluster.kernels[n].crashed)
        if down >= spec.churn.max_down:
            return
        at = round(sim.now - t0, 9)
        crashes.append((at, node))
        churn_events.append((at, node, kind))
        if kind == "leave":
            cluster.leave_node(node)
        else:
            cluster.crash_node(node)
        sim.call_after(spec.churn.down_time, revive, node)

    if spec.churn is not None:
        t = spec.churn.period
        while t < spec.active_time:
            node = rng.choice(target_nodes)
            kind = ("leave" if rng.random() < spec.churn.leave_fraction
                    else "crash")
            sim.call_at(t0 + t, churn_depart, node, kind)
            t += spec.churn.period

    partitions: list[tuple[float, int]] = []

    def isolate(node: int) -> None:
        partitions.append((round(sim.now - t0, 9), node))
        others = [n for n in range(spec.n_nodes) if n != node]
        faults.partition([node], others)
        sim.call_after(spec.partition_length,
                       lambda: faults.heal([node], others))

    if spec.partition_period is not None:
        t = spec.partition_period
        while t < spec.active_time:
            sim.call_at(t0 + t, isolate, rng.choice(target_nodes))
            t += spec.partition_period

    cluster.run(until=t0 + spec.active_time + spec.settle)

    # Convergence: heal everything, recover everyone, then every target
    # must take a probe post exactly once.
    faults.heal()
    for node in target_nodes:
        if cluster.kernels[node].crashed:
            cluster.recover_node(node)
            if not spec.durable:
                slots[node] = cluster.spawn(caps[node], "serve", executions,
                                            1e9, fault_kinds, tripped,
                                            fault_counts, at=node)
    cluster.run(until=cluster.now + 0.2)

    # Probes flow through the same chaos handler, which writes into
    # ``executions`` keyed by the ("probe", i) tuples; split them out.
    for i, node in enumerate(target_nodes):
        target = caps[node] if spec.durable else slots[node].tid
        cluster.events.raise_external(CHAOS_EVENT, target,
                                      from_node=0, user_data=("probe", i))
    cluster.run(until=cluster.now + spec.settle)

    for key in [k for k in executions if isinstance(k, tuple)]:
        probe_executions[key[1]] = executions.pop(key)

    chaos_latencies = [v for label, v in cluster.events.delivery_latencies
                       if label == CHAOS_EVENT]
    if chaos_latencies:
        ordered = sorted(chaos_latencies)
        rank = max(0, min(len(ordered) - 1,
                          int(round(0.99 * (len(ordered) - 1)))))
        p99 = ordered[rank]
    else:
        p99 = 0.0

    durability = cluster.durability_stats()
    recoveries = sorted(
        (dict(row, node=kernel.node_id)
         for kernel in cluster.kernels.values()
         for row in kernel.store.recovery_log),
        key=lambda row: (row["at"], row["node"]))
    # A handler execution still in progress after the settle window is a
    # hang the supervision layer failed to bound: a live surrogate stuck
    # in its handler frame, or an object-event thread wedged mid-serve.
    hung_handlers = sum(
        1 for t in cluster.live_threads.values()
        if t.alive and t.frames
        and t.frames[0].entry.startswith("handler:"))
    hung_handlers += sum(kernel.objects.serving
                         for kernel in cluster.kernels.values())
    report = ChaosReport(
        spec=spec, executions=executions, notices=notices,
        probe_executions=probe_executions, crashes=crashes,
        partitions=partitions, reliability=cluster.reliability_stats(),
        fault_breakdown=faults.fault_breakdown(),
        message_stats=cluster.fabric.stats.snapshot(),
        dead_targets=cluster.events.dead_targets,
        undeliverable=cluster.events.undeliverable,
        p99_latency=p99, virtual_time=cluster.now,
        durability=durability, recoveries=recoveries,
        quarantined=quarantined, hung_handlers=hung_handlers,
        supervision=cluster.supervision_stats(),
        handler_fault_counts=dict(fault_counts),
        churn_events=churn_events,
        membership=(cluster.membership_stats()
                    if spec.swim_interval is not None else {}))
    report.violations = _check_invariants(
        spec, executions, notices, probe_executions, len(target_nodes),
        durability, quarantined, hung_handlers)
    return report


def run_chaos_sweep(drop_rates: list[float], locators: list[str],
                    base: ChaosSpec | None = None) -> tuple[Table, list[ChaosReport]]:
    """Sweep drop rate x locator; returns the BENCH table and reports."""
    base = base or ChaosSpec()
    table = Table(
        title="Chaos: delivery guarantees vs drop rate "
              f"({base.posts} posts, {base.n_nodes} nodes, "
              f"crash_period={base.crash_period})",
        columns=["locator", "drop_rate", "posts", "executed_once",
                 "noticed", "success_rate", "accounted", "retransmits/post",
                 "dup_suppressed", "p99_latency"])
    reports = []
    for locator in locators:
        for rate in drop_rates:
            spec = ChaosSpec(**{**base.__dict__, "locator": locator,
                                "drop_rate": rate})
            report = run_chaos(spec)
            reports.append(report)
            table.add(locator, rate, spec.posts, report.executed_once,
                      len(report.notices), round(report.success_rate, 4),
                      round(report.accounted_rate, 4),
                      round(report.retransmits_per_post, 3),
                      report.reliability.get("duplicates_suppressed", 0),
                      round(report.p99_latency, 6))
    table.note("accounted = executed exactly once OR raiser noticed "
               "(1.0 = zero lost-or-hung posts)")
    table.note("duplicates suppressed by the channel dedup window; "
               "handler executions are exactly-once by construction")
    return table, reports
