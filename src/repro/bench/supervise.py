"""Handler supervision bench (E11): what the watchdog, the buddy
circuit breaker, the dead-letter quarantine and the heartbeat failure
detector buy under injected handler faults.

Three workloads, each run with supervision **on** (``handler_deadline``,
``handler_retries``, ``breaker_threshold``, ``poison_threshold``,
``heartbeat_interval`` set) and **off** (all defaults — the pre-PR 5
behaviour):

* ``handler-faults`` — the chaos harness with hang / transient-raise /
  poison faults injected into thread handlers, plus drops and periodic
  node crashes. Supervised runs must account every post (executed once,
  §7.2-noticed, or quarantined) with zero wedged handlers; the
  unsupervised contrast rows show the hangs and losses.
* ``durable-poison`` — the same faults against durable object posts.
  The bar tightens to *exactly-once-or-quarantined*: every journaled
  post either executes exactly once or sits inspectable in a
  dead-letter queue, never silently lost, even across crashes.
* ``buddy-breaker`` — a central monitor object serving buddy handlers
  while its node crashes and recovers. Supervised runs suspect the dead
  node via heartbeats, fail buddy invocations fast, open the breaker
  and fall through to the local fallback handler; unsupervised runs
  wait out a full RPC timeout per post. Delivery totals are asserted
  identical — only the counters and the virtual completion time differ.

Everything deterministic is returned separately from the wall-clock
figures so same-seed runs compare bit-for-bit. Results go to
``BENCH_supervise.json``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any

from repro import Decision, DistObject, entry, handler_entry
from repro.bench.chaos import ChaosSpec, run_chaos
from repro.bench.harness import Table
from repro.bench.workloads import build_cluster

#: the supervision knob set the "on" rows run with
SUPERVISED = {"handler_deadline": 0.05, "handler_retries": 2,
              "breaker_threshold": 3, "poison_threshold": 3,
              "heartbeat_interval": 0.02}
#: all defaults — the pre-supervision behaviour
UNSUPERVISED = {"handler_deadline": None, "handler_retries": 0,
                "breaker_threshold": None, "poison_threshold": None,
                "heartbeat_interval": None}


@dataclass
class SuperviseSpec:
    """One E11 configuration (shared by the on/off rows)."""

    seed: int = 7
    posts: int = 60
    #: injected handler-fault rates by kind
    hang_rate: float = 0.06
    raise_rate: float = 0.06
    poison_rate: float = 0.05
    drop_rate: float = 0.1
    crash_period: float = 0.6
    down_time: float = 0.4
    #: buddy-breaker workload shape
    buddy_posts: int = 40
    buddy_gap: float = 0.05
    rpc_timeout: float = 0.15


def _chaos_spec(spec: SuperviseSpec, supervised: bool,
                durable: bool) -> ChaosSpec:
    knobs = SUPERVISED if supervised else UNSUPERVISED
    return ChaosSpec(
        seed=spec.seed, posts=spec.posts, durable=durable,
        drop_rate=spec.drop_rate, duplicate_rate=0.05,
        crash_period=spec.crash_period, down_time=spec.down_time,
        settle=10.0,
        handler_faults={"hang": spec.hang_rate, "raise": spec.raise_rate,
                        "poison": spec.poison_rate},
        **knobs)


def run_handler_faults(spec: SuperviseSpec, supervised: bool,
                       durable: bool = False) -> dict[str, Any]:
    """Chaos with injected handler faults; supervised or bare."""
    wall = time.perf_counter()
    report = run_chaos(_chaos_spec(spec, supervised, durable))
    elapsed = time.perf_counter() - wall
    sup = report.supervision
    executed_once = sum(1 for n in report.executions.values() if n == 1)
    return {
        "posts": report.spec.posts,
        "executed_once": executed_once,
        "noticed": len(report.notices),
        "quarantined": len(report.quarantined),
        "hung_handlers": report.hung_handlers,
        "accounted_rate": round(report.accounted_rate, 4),
        "violations": len(report.violations),
        "faults_injected": dict(report.handler_fault_counts),
        "handler_timeouts": sup.get("handler_timeouts", 0),
        "chain_retries": sup.get("chain_retries", 0),
        "dead_letters_held": sup.get("dead_letters_held", 0),
        "virtual_time": round(report.virtual_time, 6),
        "wall_posts_per_sec": round(report.spec.posts / elapsed, 1)
        if elapsed else 0.0,
    }


# -- buddy-breaker workload ---------------------------------------------------

BUDDY_EVENT = "TICK"


class BuddyMonitor(DistObject):
    """Central monitor whose buddy handler serves TICK events (§4.1)."""

    def __init__(self, times):
        super().__init__()
        self.served = 0
        #: pid -> virtual time the post was finally handled (shared with
        #: the worker's fallback handler)
        self.times = times

    @handler_entry
    def on_tick(self, ctx, block):
        yield ctx.compute(1e-4)
        self.served += 1
        self.times[block.user_data] = ctx.now
        return Decision.RESUME


class MonitoredWorker(DistObject):
    """Worker thread: buddy handler first (LIFO), local fallback under it."""

    @entry
    def work(self, ctx, monitor_cap, handled, times, hold):
        def fallback(hctx, block):
            handled[block.user_data] = handled.get(block.user_data, 0) + 1
            times[block.user_data] = hctx.now
            yield hctx.compute(1e-6)
            return Decision.RESUME

        # Attach order matters: chains run LIFO, so the buddy (attached
        # last) runs first and the fallback catches its fall-throughs.
        yield ctx.attach_handler(BUDDY_EVENT, fallback)
        yield ctx.attach_handler(BUDDY_EVENT, "on_tick", buddy=monitor_cap)
        yield ctx.sleep(hold)
        return "done"


def run_buddy_breaker(spec: SuperviseSpec,
                      supervised: bool) -> dict[str, Any]:
    """Buddy handlers against a crashing monitor node.

    Posts keep flowing while the monitor's node is down; every post must
    be handled — by the buddy when its node is up, by the local fallback
    when it is not. Supervision changes *how fast* the fallback path
    engages (fast-fail + breaker skip vs a full RPC timeout per post),
    never *whether* posts are handled.
    """
    knobs = SUPERVISED if supervised else UNSUPERVISED
    knobs = {**knobs, "poison_threshold": None}  # fall through, not DLQ
    # Reliable delivery is what bounds the *unsupervised* failure path:
    # a buddy invocation shipped into the dead node fails when the
    # channel's retransmission budget gives up. Supervision gets there
    # orders of magnitude sooner via heartbeat suspicion + the breaker.
    cluster = build_cluster(n_nodes=3, seed=spec.seed,
                            reliable_delivery=True, max_retransmits=5,
                            rpc_default_timeout=spec.rpc_timeout, **knobs)
    cluster.register_event(BUDDY_EVENT)
    times: dict[int, float] = {}
    monitor = cluster.create_object(BuddyMonitor, times, node=1)
    worker = cluster.create_object(MonitoredWorker, node=0)
    handled: dict[int, int] = {}
    thread = cluster.spawn(worker, "work", monitor, handled, times, 1e9,
                           at=0)
    cluster.run(until=cluster.now + 0.1)  # handlers attach

    sim, t0 = cluster.sim, cluster.now
    for pid in range(spec.buddy_posts):
        sim.call_at(t0 + pid * spec.buddy_gap, cluster.raise_event,
                    BUDDY_EVENT, thread.tid, 0, pid)
    span = spec.buddy_posts * spec.buddy_gap
    # The monitor's node dies mid-stream and comes back near the end.
    sim.call_at(t0 + 0.3 * span, cluster.crash_node, 1)
    sim.call_at(t0 + 0.8 * span, cluster.recover_node, 1)
    wall = time.perf_counter()
    cluster.run(until=t0 + span + 30.0)
    elapsed = time.perf_counter() - wall

    served = cluster.get_object(monitor).served
    fellback = sum(handled.values())
    assert served + fellback == spec.buddy_posts, \
        (f"posts unaccounted: buddy served {served}, fallback {fellback}, "
         f"posted {spec.buddy_posts}")
    assert all(n == 1 for n in handled.values()), \
        f"fallback ran a post twice: {handled}"
    sup = cluster.supervision_stats()
    latencies = [times[pid] - (t0 + pid * spec.buddy_gap)
                 for pid in range(spec.buddy_posts)]
    return {
        "posts": spec.buddy_posts,
        "buddy_served": served,
        "fallback_handled": fellback,
        "fast_fails": sup.get("fast_fails", 0),
        "handler_retries": sup.get("handler_retries", 0),
        "breaker_opens": sup.get("breaker_opens", 0),
        "breaker_skips": sup.get("breaker_skips", 0),
        "breaker_closes": sup.get("breaker_closes", 0),
        "suspicions": sup.get("suspicions", 0),
        # virtual post->handled latency: the stall supervision removes
        "mean_latency": round(sum(latencies) / len(latencies), 6),
        "max_latency": round(max(latencies), 6),
        "wall_posts_per_sec": round(spec.buddy_posts / elapsed, 1)
        if elapsed else 0.0,
    }


def deterministic_view(result: dict[str, Any]) -> dict[str, Any]:
    """The same-seed-comparable subset (wall-clock stripped)."""
    return {k: v for k, v in result.items() if k != "wall_posts_per_sec"}


WORKLOADS = ["handler-faults", "durable-poison", "buddy-breaker"]


def run_supervise_sweep(
        spec: SuperviseSpec | None = None,
        workloads: list[str] | None = None,
) -> tuple[Table, dict[str, dict[str, dict[str, Any]]]]:
    """Run every workload supervised and bare; returns (table, results).

    ``results[workload]["on"|"off"]`` holds the raw counter dicts the
    smoke assertions and EXPERIMENTS.md numbers come from.
    """
    spec = spec or SuperviseSpec()
    table = Table(
        title="Handler supervision: watchdog + breaker + dead letters + "
              f"failure detector ({spec.posts} chaos posts, "
              f"{spec.buddy_posts} buddy posts)",
        columns=["workload", "supervised", "posts", "exec=1", "noticed/"
                 "buddy", "quarantined/fallback", "hung", "accounted",
                 "violations", "virt_time"])
    runners = {
        "handler-faults": lambda on: run_handler_faults(spec, on),
        "durable-poison": lambda on: run_handler_faults(spec, on,
                                                        durable=True),
        "buddy-breaker": lambda on: run_buddy_breaker(spec, on),
    }
    results: dict[str, dict[str, dict[str, Any]]] = {}
    for workload in workloads or WORKLOADS:
        results[workload] = {}
        for mode, on in (("on", True), ("off", False)):
            row = runners[workload](on)
            results[workload][mode] = row
            if workload == "buddy-breaker":
                table.add(workload, mode, row["posts"], row["buddy_served"],
                          row["buddy_served"], row["fallback_handled"],
                          0, 1.0, 0, row["mean_latency"])
            else:
                table.add(workload, mode, row["posts"],
                          row["executed_once"], row["noticed"],
                          row["quarantined"], row["hung_handlers"],
                          row["accounted_rate"], row["violations"],
                          row["virtual_time"])
    table.note("supervised=off: no watchdog, no retries, no breaker, no "
               "quarantine, no failure detector (pre-PR 5 behaviour)")
    table.note("supervised rows must account every post (executed once, "
               "noticed, or quarantined) with zero wedged handlers; "
               "buddy-breaker delivery totals are asserted identical "
               "on/off")
    return table, results
