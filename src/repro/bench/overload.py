"""E13: overload control — latency-vs-offered-load to the knee and past it.

Drives the open-loop generator (:mod:`repro.bench.workload`) against a
cluster of service objects whose master handler threads charge a fixed
``service_time`` per post, so the cluster has a hard service capacity of
``(n_nodes - 1) / service_time`` posts per virtual second. Two question
sets:

* **the knee curve** — offered load swept from well under capacity to
  3x past it, with overload control off (the seed behaviour: queues and
  p99 grow without bound past the knee) and on (admission gate +
  flow-control window hold p99 near the watermark while goodput stays
  at capacity);
* **the policy matrix at 2x overload** — ``drop`` (§7.2 undeliverable
  notices for shed posts), ``degrade`` (reliable -> fire-and-forget
  datagrams for idempotent posts), ``defer`` (durable posts parked to
  the transactional outbox and drained after the storm), plus a bursty
  fan-out storm and a weighted-fair two-tenant scenario.

Every run keeps chaos-grade accounting: per-post execution and notice
maps prove each offered post is **executed, noticed, shed-with-notice,
or deferred-then-executed — never silently lost** (the PR 5 invariant
extended to load shedding).

Run it::

    PYTHONPATH=src python -m repro.bench.overload
    PYTHONPATH=src python -m repro.bench.overload --duration 1.0 --json /dev/null
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from typing import Any

from repro import Cluster, ClusterConfig, Decision, DistObject, entry, on_event
from repro.bench.harness import Table, emit_json
from repro.bench.soak import MUTED_CATEGORIES
from repro.bench.workload import (
    FANOUT,
    WorkloadSpec,
    build_schedule,
    drive,
    summarize,
)
OVERLOAD_EVENT = "OVERLOAD"

#: offered-load multiples for the knee sweep (1.0 = service capacity)
KNEE_MULTIPLES = (0.5, 0.8, 1.2, 2.0, 3.0)


@dataclass
class OverloadSpec:
    """One E13 configuration; scenario runs derive from it via replace."""

    seed: int = 0
    n_nodes: int = 4
    #: arrival window, virtual seconds
    duration: float = 2.0
    #: per-post master-handler compute at the sinks
    service_time: float = 2e-3
    n_objects: int = 6
    #: offered load as a multiple of service capacity
    offered_x: float = 2.0
    arrival: str = "poisson"
    zipf_s: float = 1.1
    burst_factor: float = 8.0
    burst_fraction: float = 0.125
    burst_cycle: float = 0.25
    diurnal_depth: float = 0.0
    #: every Nth arrival is a group fan-out storm (0 = never)
    fanout_every: int = 0
    group_size: int = 3
    tenants: tuple = (0,)
    tenant_rates: tuple = ()
    #: overload-control knobs applied when control is on
    policy: str = "drop"
    flow_credits: int = 8
    admission_high: int = 32
    admission_low: int | None = None
    tenant_weights: dict = field(default_factory=dict)
    durable: bool = False
    #: degrade runs set this past the worst queueing delay so the
    #: datagram-loss backstop (which falls back to ``locate_timeout``)
    #: does not fire §7.2 notices for posts that are merely queued deep
    post_deadline: float | None = None
    link_latency: float = 1e-3
    #: extra virtual time after the arrival window for fan-out scenarios
    #: (sink threads sleep forever, so those runs cannot idle out)
    settle: float = 4.0

    def capacity(self) -> float:
        """Service capacity, posts per virtual second."""
        return (self.n_nodes - 1) / self.service_time

    def offered_rate(self) -> float:
        return self.offered_x * self.capacity()


class OverloadSink(DistObject):
    """Service object: fixed compute per post, per-post accounting."""

    def __init__(self, service_time: float, state: dict):
        super().__init__()
        self.service_time = service_time
        self.state = state
        self.seen = 0

    @on_event(OVERLOAD_EVENT)
    def on_post(self, ctx, block):
        yield ctx.compute(self.service_time)
        self.seen += 1
        state = self.state
        pid = block.user_data
        state["executions"][pid] = state["executions"].get(pid, 0) + 1
        tenant = block.raiser_node
        state["by_tenant"][tenant] = state["by_tenant"].get(tenant, 0) + 1
        state["samples"].append(ctx.now - block.raised_at)
        state["last_done"] = ctx.now
        if ctx.now <= state["window_end"]:
            state["in_window"] += 1
        return None


class StormMember(DistObject):
    """Group-member thread body: absorbs fan-out posts, keeps accounts."""

    @entry
    def absorb(self, ctx, event, state, hold):
        def on_event_(hctx, block):
            yield hctx.compute(1e-6)
            pid = block.user_data
            state["executions"][pid] = state["executions"].get(pid, 0) + 1
            state["samples"].append(hctx.now - block.raised_at)
            state["last_done"] = hctx.now
            if hctx.now <= state["window_end"]:
                state["in_window"] += 1
            return Decision.RESUME

        yield ctx.attach_handler(event, on_event_)
        yield ctx.sleep(hold)
        return "done"


def _percentile(samples: list, frac: float) -> float:
    if not samples:
        return 0.0
    ordered = sorted(samples)
    return ordered[min(len(ordered) - 1, int(len(ordered) * frac))]


def _build(spec: OverloadSpec, control: bool) -> Cluster:
    knobs: dict[str, Any] = dict(
        seed=spec.seed, n_nodes=spec.n_nodes,
        link_latency=spec.link_latency, reliable_delivery=True,
        durable_delivery=spec.durable, post_deadline=spec.post_deadline,
        trace_net=False)
    if control:
        knobs.update(flow_credits=spec.flow_credits,
                     admission_high=spec.admission_high,
                     admission_low=spec.admission_low,
                     overload_policy=spec.policy,
                     tenant_weights=dict(spec.tenant_weights))
    cluster = Cluster(ClusterConfig(**knobs))
    cluster.tracer.mute(*MUTED_CATEGORIES)
    cluster.register_event(OVERLOAD_EVENT)
    return cluster


def _workload(spec: OverloadSpec) -> WorkloadSpec:
    return WorkloadSpec(
        seed=spec.seed, duration=spec.duration, rate=spec.offered_rate(),
        arrival=spec.arrival, burst_factor=spec.burst_factor,
        burst_fraction=spec.burst_fraction, burst_cycle=spec.burst_cycle,
        diurnal_depth=spec.diurnal_depth, n_targets=spec.n_objects,
        zipf_s=spec.zipf_s, fanout_every=spec.fanout_every,
        tenants=spec.tenants, tenant_rates=spec.tenant_rates)


def run_overload(spec: OverloadSpec, control: bool = True) -> dict[str, Any]:
    """One open-loop run; returns the accounting + metrics row.

    Raises if any offered post is unaccounted — executed the wrong
    number of times with no notice, or lost without a §7.2 signal.
    """
    cluster = _build(spec, control)
    service_nodes = range(1, spec.n_nodes)
    state: dict[str, Any] = {"executions": {}, "by_tenant": {},
                             "samples": [], "in_window": 0,
                             "window_end": float("inf"), "last_done": 0.0}
    caps = [cluster.create_object(OverloadSink, spec.service_time, state,
                                  node=(i % (spec.n_nodes - 1)) + 1)
            for i in range(spec.n_objects)]
    gid = None
    if spec.fanout_every:
        gid = cluster.new_group()
        members = [cluster.create_object(StormMember, node=node)
                   for node in service_nodes][:spec.group_size]
        for node, cap in enumerate(members, start=1):
            cluster.spawn(cap, "absorb", OVERLOAD_EVENT, state, 1e9,
                          at=node, group=gid)
        cluster.run(until=cluster.now + 0.1)  # handlers attach

    notices: dict[int, int] = {}

    def on_undeliverable(block: Any, target: Any) -> None:
        pid = block.user_data
        if isinstance(pid, int):
            notices[pid] = notices.get(pid, 0) + 1

    cluster.events.on_undeliverable = on_undeliverable

    schedule = build_schedule(_workload(spec))
    fired = {"next": 0}
    raise_external = cluster.events.raise_external

    def fire(arrival: Any) -> None:
        pid = fired["next"]
        fired["next"] += 1
        target = gid if arrival.target == FANOUT else caps[arrival.target]
        raise_external(OVERLOAD_EVENT, target, from_node=arrival.tenant,
                       user_data=pid)

    t0 = drive(cluster, schedule, fire)
    state["window_end"] = t0 + spec.duration
    wall = time.perf_counter()
    if gid is not None:
        # sink threads sleep ~forever; run a fixed drain window instead
        cluster.run(until=t0 + spec.duration + spec.settle,
                    max_events=None)
    else:
        cluster.run(max_events=None)  # to quiescence: full drain
    elapsed = time.perf_counter() - wall
    # time to drain the backlog, measured to the *last execution* (the
    # simulator may idle further while no-op backstop timers expire)
    drain = max(0.0, state["last_done"] - (t0 + spec.duration))

    lost, overdelivered = _check_accounting(
        spec, schedule, state["executions"], notices)
    executed = sum(state["executions"].values())
    offered = len(schedule)
    capacity_posts = spec.capacity() * spec.duration
    sup = cluster.supervision_stats()
    rel = cluster.reliability_stats()
    store = cluster.durability_stats()
    if spec.durable:
        assert store.get("pending", 0) == 0, \
            f"durable run left {store['pending']} outbox entries pending"
        assert not lost, f"durable posts lost: {sorted(lost)[:10]}"
    latency = state["samples"]
    row = {
        "control": control, "policy": spec.policy,
        "offered_x": spec.offered_x, "offered_posts": offered,
        "executed": executed,
        "goodput_frac": round(
            state["in_window"] / max(1.0, min(offered, capacity_posts)), 4),
        "p50_latency": round(_percentile(latency, 0.50), 6),
        "p99_latency": round(_percentile(latency, 0.99), 6),
        "drain_time": round(drain, 4),
        "shed_dropped": sup.get("admission_shed_dropped", 0),
        "shed_degraded": sup.get("admission_shed_degraded", 0),
        "shed_deferred": sup.get("admission_shed_deferred", 0),
        "gate_depth_hwm": sup.get("admission_gate_depth_hwm", 0),
        "notices": sum(notices.values()),
        "inflight_hwm": rel.get("inflight_hwm", 0),
        "flow_parked": rel.get("flow_parked", 0),
        "flow_halvings": rel.get("flow_halvings", 0),
        "outbox_deferred": store.get("deferred", 0),
        "outbox_redelivered": store.get("redelivered", 0),
        "lost": len(lost), "overdelivered": len(overdelivered),
        "per_tenant_executed": dict(sorted(state["by_tenant"].items())),
        "workload": summarize(schedule, spec.duration),
        "wall_secs": round(elapsed, 3),
    }
    assert not lost, (
        f"posts silently lost (no execution, no notice): "
        f"{sorted(lost)[:10]}")
    assert not overdelivered, (
        f"posts over-delivered: {sorted(overdelivered)[:10]}")
    return row


def _check_accounting(spec: OverloadSpec, schedule: list,
                      executions: dict, notices: dict
                      ) -> tuple[list[int], list[int]]:
    """Every offered post: executed, noticed, or (fan-out) fully fanned.

    A fan-out post is accounted when every member executed it, or when
    the whole storm was shed with one §7.2 notice to the raiser.
    """
    lost: list[int] = []
    overdelivered: list[int] = []
    for pid, arrival in enumerate(schedule):
        ran = executions.get(pid, 0)
        told = notices.get(pid, 0)
        if arrival.target == FANOUT:
            if not (ran == spec.group_size or (ran == 0 and told >= 1)):
                (lost if ran + told == 0 else overdelivered).append(pid)
        elif ran + told == 0:
            lost.append(pid)
        elif ran > 1:
            overdelivered.append(pid)
    return lost, overdelivered


def run_overload_sweep(spec: OverloadSpec | None = None
                       ) -> tuple[Table, dict[str, Any]]:
    """The committed E13 campaign: knee sweep + policy matrix at 2x."""
    spec = spec or OverloadSpec()
    results: dict[str, Any] = {"knee": {}, "policies": {}}
    table = Table(
        title=f"Overload (E13): capacity {spec.capacity():.0f} posts/s, "
              f"{spec.duration}s window, Zipf(s={spec.zipf_s}) over "
              f"{spec.n_objects} objects, high={spec.admission_high}, "
              f"credits={spec.flow_credits}",
        columns=["scenario", "ctl", "x", "offered", "executed", "goodput",
                 "p50", "p99", "drain", "shed", "notices", "lost"])

    def record(scenario: str, row: dict[str, Any]) -> None:
        row = dict(row, scenario=scenario)
        shed = (row["shed_dropped"] + row["shed_degraded"]
                + row["shed_deferred"])
        table.add(scenario, "on" if row["control"] else "off",
                  row["offered_x"], row["offered_posts"], row["executed"],
                  row["goodput_frac"], row["p50_latency"],
                  row["p99_latency"], row["drain_time"], shed,
                  row["notices"], row["lost"])

    for mult in KNEE_MULTIPLES:
        point = replace(spec, offered_x=mult, policy="drop")
        results["knee"][f"x{mult}"] = {
            "off": run_overload(point, control=False),
            "on": run_overload(point, control=True)}
        record(f"knee-x{mult}", results["knee"][f"x{mult}"]["off"])
        record(f"knee-x{mult}", results["knee"][f"x{mult}"]["on"])

    two_x = replace(spec, offered_x=2.0)
    scenarios = {
        "drop": replace(two_x, policy="drop"),
        "degrade": replace(two_x, policy="degrade", post_deadline=30.0),
        "defer": replace(two_x, policy="defer", durable=True),
        "storm": replace(two_x, policy="drop", arrival="bursty",
                         fanout_every=5),
        "fair": replace(two_x, policy="drop", tenants=(0, 1),
                        tenant_rates=(4.0, 1.0),
                        tenant_weights={0: 1.0, 1: 1.0}),
    }
    for name, scenario_spec in scenarios.items():
        results["policies"][name] = run_overload(scenario_spec,
                                                 control=True)
        record(name, results["policies"][name])

    table.note("knee: drop policy, control off vs on; goodput is "
               "executed-in-window / min(offered, capacity) posts")
    table.note("policies at 2x: drop sheds with notices, degrade "
               "downgrades to datagrams, defer parks durable posts to "
               "the outbox and drains after the storm")
    table.note("p50/p99 are virtual raise->deliver seconds over "
               "delivered posts; lost must be 0 everywhere")
    results["spec"] = {
        "seed": spec.seed, "n_nodes": spec.n_nodes,
        "duration": spec.duration, "service_time": spec.service_time,
        "n_objects": spec.n_objects, "zipf_s": spec.zipf_s,
        "capacity": spec.capacity(), "flow_credits": spec.flow_credits,
        "admission_high": spec.admission_high,
        "group_size": spec.group_size,
    }
    return table, results


def deterministic_view(row: dict[str, Any]) -> dict[str, Any]:
    """The same-seed-comparable subset of a result row."""
    return {k: v for k, v in row.items() if not k.startswith("wall_")}


def assert_overload_shape(results: dict[str, Any]) -> None:
    """The E13 acceptance bars, checked by bench and CI smoke alike."""
    knee_on_2x = results["knee"]["x2.0"]["on"]
    knee_off_2x = results["knee"]["x2.0"]["off"]
    # Nothing silently lost anywhere (run_overload already asserts
    # per-run; re-check the committed rows).
    for group in results["knee"].values():
        for row in group.values():
            assert row["lost"] == 0 and row["overdelivered"] == 0, row
    # >= 90% goodput at 2x overload with control on.
    assert knee_on_2x["goodput_frac"] >= 0.90, knee_on_2x
    # Bounded p99 with control on: the admission watermark caps queueing,
    # where the uncontrolled run's p99 grows with the arrival window.
    assert knee_on_2x["p99_latency"] <= 0.2 * knee_off_2x["p99_latency"], \
        (knee_on_2x, knee_off_2x)
    # Shedding engaged, every shed post was noticed or deferred.
    assert knee_on_2x["shed_dropped"] > 0, knee_on_2x
    assert knee_on_2x["notices"] >= knee_on_2x["shed_dropped"], knee_on_2x
    # Under capacity the gate stays out of the way.
    assert results["knee"]["x0.5"]["on"]["shed_dropped"] == 0
    policies = results["policies"]
    assert policies["degrade"]["shed_degraded"] > 0, policies["degrade"]
    defer = policies["defer"]
    # Durable 2x overload: every post deferred-then-executed, none lost.
    assert defer["shed_deferred"] > 0, defer
    assert defer["executed"] == defer["offered_posts"], defer
    assert defer["outbox_redelivered"] >= defer["shed_deferred"], defer
    storm = policies["storm"]
    # Bursty fan-out storm: flow control parks the burst head.
    assert storm["flow_parked"] > 0, storm
    fair = policies["fair"]
    per_tenant = fair["per_tenant_executed"]
    offered = fair["workload"]["tenant_counts"]
    # Weighted-fair shedding: the light tenant (1/5 of offered load,
    # half the admitted share) keeps a larger fraction of its posts
    # than the hot tenant that caused the overload.
    hot = per_tenant.get(0, 0) / max(1, offered.get(0, 1))
    light = per_tenant.get(1, 0) / max(1, offered.get(1, 1))
    assert light > hot, (per_tenant, offered)


def main(argv: list[str] | None = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.overload", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--duration", type=float, default=2.0,
                        help="arrival window, virtual seconds "
                             "(default: 2.0)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--json", default="BENCH_overload.json",
                        help="output path (default: BENCH_overload.json)")
    args = parser.parse_args(argv)

    spec = OverloadSpec(seed=args.seed, duration=args.duration)
    table, results = run_overload_sweep(spec)
    table.show()
    assert_overload_shape(results)
    payload = {
        "knee": {x: {mode: deterministic_view(row)
                     for mode, row in modes.items()}
                 for x, modes in results["knee"].items()},
        "policies": {name: deterministic_view(row)
                     for name, row in results["policies"].items()},
        "spec": results["spec"],
    }
    emit_json(table, args.json, "overload", **payload)
    print(f"\nwrote {args.json}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
