"""Benchmark harness: workloads, experiment definitions, result tables."""

from repro.bench.experiments import ALL_EXPERIMENTS, run_everything
from repro.bench.harness import Table, ratio, sweep

__all__ = ["ALL_EXPERIMENTS", "Table", "ratio", "run_everything", "sweep"]
