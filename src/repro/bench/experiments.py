"""Experiment definitions: one function per table/figure of EXPERIMENTS.md.

The paper (a design paper) contains exactly one table — the §5.3
addressing/blocking options — and no figures; every other experiment here
quantifies a specific claim made in the prose, as indexed in DESIGN.md.
Each function returns a :class:`~repro.bench.harness.Table` whose rows are
recorded in EXPERIMENTS.md; the ``benchmarks/`` files wrap them for
pytest-benchmark timing.
"""

from __future__ import annotations

from repro import Decision, DistObject, entry
from repro.apps.pager_app import run_pager_workload
from repro.apps.termination import press_ctrl_c, termination_report
from repro.baselines import SCENARIOS, run_all
from repro.bench.harness import Table, ratio
from repro.bench.workloads import (
    bouncing_thread,
    build_cluster,
    ctrl_c_app,
    deep_thread,
    lock_chain,
    object_event_storm,
    transport_workload,
)


# ---------------------------------------------------------------------------
# T1 — the §5.3 table: addressing and blocking options
# ---------------------------------------------------------------------------

def run_table1() -> Table:
    """Reproduce the paper's raise-call table, measured.

    For each of the six call forms: who received the event, whether the
    raiser blocked, and the raiser-observed virtual latency.
    """
    table = Table(
        title="Table 1 (§5.3): raise-call addressing and blocking",
        columns=["call", "recipients (paper)", "recipients (measured)",
                 "raiser blocked", "raiser latency (ms)"])

    class Probe(DistObject):
        @entry
        def fire(self, ctx, sync, target):
            start = ctx.now
            if sync:
                yield ctx.raise_and_wait("T1EVT", target)
            else:
                yield ctx.raise_event("T1EVT", target)
            return ctx.now - start

    class CountingSink(DistObject):
        def __init__(self, hits):
            super().__init__()
            self.hits = hits

        @entry
        def absorb(self, ctx, label):
            hits = self.hits

            def handler(hctx, block):
                hits.append(label)
                yield hctx.compute(1e-5)
                return Decision.RESUME

            yield ctx.attach_handler("T1EVT", handler)
            yield ctx.sleep(1e6)

        from repro.objects.base import on_event as _on

        @_on("T1EVT")
        def obj_handler(self, ctx, block):
            self.hits.append("object")
            yield ctx.compute(1e-5)
            return "object-ack"

    def rig():
        cluster = build_cluster(n_nodes=4)
        cluster.register_event("T1EVT")
        hits: list[str] = []
        sink = cluster.create_object(CountingSink, hits, node=2)
        probe = cluster.create_object(Probe, node=1)
        victim = cluster.spawn(sink, "absorb", "tid-target", at=3)
        gid = cluster.new_group()
        for i in range(3):
            cluster.spawn(sink, "absorb", f"g{i}", at=i, group=gid)
        cluster.run(until=0.1)
        return cluster, hits, sink, probe, victim, gid

    cases = [
        ("raise(e, tid)", "thread tid", False, "victim"),
        ("raise(e, gtid)", "threads in group gtid", False, "group"),
        ("raise(e, oid)", "object oid", False, "object"),
        ("raise_and_wait(e, tid)", "thread tid, synchronously", True,
         "victim"),
        ("raise_and_wait(e, gtid)", "threads of group, synchronously",
         True, "group"),
        ("raise_and_wait(e, oid)", "object oid, synchronously", True,
         "object"),
    ]
    for call, paper_recipients, sync, target_kind in cases:
        cluster, hits, sink, probe, victim, gid = rig()
        target = {"victim": victim.tid, "group": gid,
                  "object": sink}[target_kind]
        thread = cluster.spawn(probe, "fire", sync, target, at=1)
        cluster.run()
        latency = thread.completion.result()
        measured = sorted(set(hits))
        table.add(call, paper_recipients, ",".join(measured) or "-",
                  "yes" if sync else "no", latency * 1e3)
    table.note("async raiser latency is one local scheduling step; "
               "sync raiser blocks across locate+deliver+handle+resume")
    return table


# ---------------------------------------------------------------------------
# E2 — §7.1 thread location strategies
# ---------------------------------------------------------------------------

def _measure_posts(cluster, thread, posts: int,
                   warmup: int = 0) -> tuple[float, float]:
    """Post INTERRUPT ``posts`` times; returns (msgs/post, latency/post).

    ``warmup`` posts run (and are excluded) first, so steady-state
    strategies like the hint cache are measured hot. Only ``locate.*``
    messages are counted, so a target that keeps migrating during the
    measurement is not charged for its own invoke/reply traffic.
    """
    for _ in range(warmup):
        cluster.raise_event("INTERRUPT", thread.tid, from_node=0)
        cluster.run(until=cluster.now + 0.2)
    before_msgs = cluster.fabric.stats.count_prefix("locate.")
    for _ in range(posts):
        cluster.raise_event("INTERRUPT", thread.tid, from_node=0)
        cluster.run(until=cluster.now + 0.2)
    assert thread.alive, "posting must not kill the target"
    msgs = (cluster.fabric.stats.count_prefix("locate.")
            - before_msgs) / posts
    samples = cluster.events.delivery_latencies.last(posts)
    latency = sum(lat for _, lat in samples) / max(1, len(samples))
    return msgs, latency


def run_e2(cluster_sizes=(2, 4, 8, 16, 32), depths=(1, 4),
           posts: int = 20) -> Table:
    table = Table(
        title="E2 (§7.1): locating a migrating thread",
        columns=["locator", "nodes", "migration depth",
                 "msgs/post", "latency/post (ms)", "mcast joins"])
    for locator in ("broadcast", "path", "multicast"):
        for n in cluster_sizes:
            for depth in depths:
                if depth >= n:
                    continue
                cluster = build_cluster(n_nodes=n, locator=locator)
                thread = deep_thread(cluster, depth=depth)
                joins = cluster.fabric.multicast_groups.joins
                msgs, latency = _measure_posts(cluster, thread, posts)
                table.add(locator, n, depth, msgs, latency * 1e3,
                          joins if locator == "multicast" else 0)
    # The fourth locator: hint-cached direct posting. Three cases — a
    # warm cache posting to a located thread (the steady state the cache
    # buys), a cold cache (first post ever: pure fallback cost), and an
    # adversarially migrating target (every hint is stale on arrival).
    for n in cluster_sizes:
        for depth in depths:
            if depth >= n:
                continue
            cluster = build_cluster(n_nodes=n, locator="cached")
            thread = deep_thread(cluster, depth=depth)
            msgs, latency = _measure_posts(cluster, thread, posts,
                                           warmup=1)
            table.add("cached (hot)", n, depth, msgs, latency * 1e3, 0)
            cluster = build_cluster(n_nodes=n, locator="cached")
            thread = deep_thread(cluster, depth=depth)
            msgs, latency = _measure_posts(cluster, thread, 1)
            table.add("cached (cold)", n, depth, msgs, latency * 1e3, 0)
    for n in cluster_sizes:
        if n < 3:
            continue
        cluster = build_cluster(n_nodes=n, locator="cached")
        thread = bouncing_thread(cluster, dwell=0.05)
        msgs, latency = _measure_posts(cluster, thread, posts, warmup=1)
        table.add("cached (migrating)", n, 1, msgs, latency * 1e3, 0)
    table.note("paper: broadcast 'communication intensive and wasteful'; "
               "path finds the thread 'in n steps'; multicast addresses "
               "the thread directly at membership-maintenance cost")
    table.note("cached: hints amortise location to 1 msg/post for a "
               "located thread; cold posts pay the fallback "
               "(cache_fallback=path), stale hints chase TCB pointers")
    return table


# ---------------------------------------------------------------------------
# E3 — §4.3/§7 master handler thread vs thread-per-event
# ---------------------------------------------------------------------------

def run_e3(event_counts=(10, 50, 200),
           create_cost: float = 2e-4) -> Table:
    table = Table(
        title="E3 (§7): object-event execution — master thread vs "
              "per-event threads",
        columns=["mode", "events", "threads created",
                 "creation overhead (ms)", "virtual time (ms)",
                 "time/event (us)"])
    for mode in ("master", "per-event"):
        for events in event_counts:
            cluster = object_event_storm(mode, events,
                                         thread_create_cost=create_cost)
            manager = cluster.kernels[1].objects
            table.add(mode, events, manager.handler_threads_created,
                      manager.handler_threads_created * create_cost * 1e3,
                      cluster.now * 1e3, cluster.now / events * 1e6)
    table.note(f"thread_create_cost={create_cost}s; the master thread "
               f"'eliminates thread-creation costs'")
    return table


# ---------------------------------------------------------------------------
# E4 — §4.2 chaining: distributed lock cleanup
# ---------------------------------------------------------------------------

def run_e4(lock_counts=(1, 2, 4, 8, 16)) -> Table:
    table = Table(
        title="E4 (§4.2): TERMINATE-chained lock cleanup",
        columns=["locks held", "chain depth", "released on TERMINATE",
                 "released %", "cleanup msgs", "virtual time (ms)"])
    for locks in lock_counts:
        rig = lock_chain(locks)
        cluster = rig.cluster
        manager = cluster.get_object(rig.manager_cap)
        chain_depth = len(rig.thread.attributes.handlers_for("TERMINATE"))
        before = cluster.fabric.stats.sent
        start = cluster.now
        cluster.raise_event("TERMINATE", rig.thread.tid, from_node=2)
        cluster.run()
        released = manager.cleanup_releases
        table.add(locks, chain_depth, released,
                  100.0 * released / locks,
                  cluster.fabric.stats.sent - before,
                  (cluster.now - start) * 1e3)
    table.note("'all locked data are unlocked, regardless of their "
               "location and scope'")
    return table


# ---------------------------------------------------------------------------
# E5 — §6.3 distributed ^C
# ---------------------------------------------------------------------------

def run_e5(worker_counts=(2, 4, 8, 16), n_nodes: int = 8) -> Table:
    table = Table(
        title="E5 (§6.3): distributed ^C — clean group termination",
        columns=["workers", "group size", "survivors", "orphans",
                 "locks leaked", "objects ABORT-notified",
                 "time to quiescence (ms)", "messages"])
    for workers in worker_counts:
        rig = ctrl_c_app(workers, n_nodes=n_nodes)
        cluster = rig.cluster
        group_size = len(cluster.groups.members(rig.gid))
        before_msgs = cluster.fabric.stats.sent
        start = cluster.now
        press_ctrl_c(cluster, rig.root.tid)
        cluster.run()
        report = termination_report(cluster, rig.gid,
                                    caps=[rig.root_obj, rig.worker_obj])
        manager = cluster.get_object(rig.manager_cap)
        leaked = sum(1 for lk in manager._locks.values()
                     if lk.holder is not None)
        table.add(workers, group_size, len(report["surviving_members"]),
                  len(report["orphans"]), leaked,
                  len(report["aborted_oids"]),
                  (cluster.now - start) * 1e3,
                  cluster.fabric.stats.sent - before_msgs)
    table.note("baseline comparison: see E8 — UNIX signals cannot reach "
               "remote or passive recipients at all")
    return table


# ---------------------------------------------------------------------------
# E6 — §6.4 external pager
# ---------------------------------------------------------------------------

def run_e6(faulter_counts=(1, 2, 4, 8), n_nodes: int = 8) -> Table:
    table = Table(
        title="E6 (§6.4): user-level VM manager (external pager)",
        columns=["faulters", "mode", "vm faults", "faults served",
                 "page transfers", "merged pages", "virtual time (ms)"])
    for faulters in faulter_counts:
        for private in (False, True):
            cluster = build_cluster(n_nodes=n_nodes)
            result = run_pager_workload(cluster, faulters=faulters,
                                        keys_per_thread=3, writes=2,
                                        private_copies=private)
            table.add(faulters, "private-copy" if private else "shared",
                      result.vm_faults, result.faults_served,
                      result.page_transfers, result.merged_pages,
                      result.virtual_time * 1e3)
    table.note("'if another thread faults on the same memory, the server "
               "can supply a copy of the page, and later merge the pages'")
    return table


# ---------------------------------------------------------------------------
# E7 — §2 transport transparency (RPC vs DSM)
# ---------------------------------------------------------------------------

def run_e7(workers: int = 3, rounds: int = 5) -> Table:
    table = Table(
        title="E7 (§2): identical event behaviour under RPC and DSM "
              "transports",
        columns=["transport", "per-thread handler traces equal",
                 "marks delivered", "invoke msgs", "dsm msgs",
                 "virtual time (ms)"])
    runs = {t: transport_workload(t, workers=workers, rounds=rounds)
            for t in ("rpc", "dsm")}

    def marks(run):
        return {label: [d for k, d in t if k == "MARK"]
                for label, t in run.per_thread_traces.items()}

    equal = marks(runs["rpc"]) == marks(runs["dsm"])
    for transport, run in runs.items():
        invoke_msgs = sum(v for k, v in run.messages.items()
                          if k.startswith("invoke."))
        dsm_msgs = sum(v for k, v in run.messages.items()
                       if k.startswith("rpc."))
        table.add(transport, "yes" if equal else "NO",
                  sum(len(v) for v in marks(run).values()),
                  invoke_msgs, dsm_msgs, run.virtual_time * 1e3)
    table.note("same application code; RPC ships the thread, DSM ships "
               "the pages — handler recipients and order are identical")
    return table


# ---------------------------------------------------------------------------
# E8 — §9 facility comparison
# ---------------------------------------------------------------------------

def run_e8(seeds=range(20)) -> Table:
    table = Table(
        title="E8 (§9): correct-recipient delivery by facility",
        columns=["scenario"] + ["unix", "mach", "doct"])
    totals = {name: dict.fromkeys(("unix", "mach", "doct"), 0)
              for name in SCENARIOS}
    n_seeds = 0
    for seed in seeds:
        n_seeds += 1
        results = run_all(seed=seed)
        for facility, rows in results.items():
            for row in rows:
                totals[row.scenario][facility] += int(row.correct)
    for scenario in SCENARIOS:
        table.add(scenario,
                  *(f"{totals[scenario][f] / n_seeds:.0%}"
                    for f in ("unix", "mach", "doct")))
    overall = {f: sum(totals[s][f] for s in SCENARIOS) /
               (n_seeds * len(SCENARIOS)) for f in ("unix", "mach", "doct")}
    table.add("OVERALL", *(f"{overall[f]:.0%}"
                           for f in ("unix", "mach", "doct")))
    table.note("unix occasionally 'wins' scenario 1 because the "
               "arbitrary-thread choice lands on the intended thread by "
               "luck (1/8 chance in this workload)")
    return table


# ---------------------------------------------------------------------------
# E9 — §3 synchronous vs asynchronous raising
# ---------------------------------------------------------------------------

def run_e9(service_times=(0.0, 1e-3, 1e-2, 1e-1)) -> Table:
    table = Table(
        title="E9 (§3): raiser blocking window, sync vs async",
        columns=["handler service time (ms)", "async window (ms)",
                 "sync window (ms)", "sync/async ratio"])

    class Probe(DistObject):
        @entry
        def fire(self, ctx, target, sync):
            start = ctx.now
            if sync:
                yield ctx.raise_and_wait("E9EVT", target)
            else:
                yield ctx.raise_event("E9EVT", target)
            return ctx.now - start

    class Sink(DistObject):
        @entry
        def absorb(self, ctx, service):
            def handler(hctx, block):
                yield hctx.sleep(service)
                return Decision.RESUME

            yield ctx.attach_handler("E9EVT", handler)
            yield ctx.sleep(1e6)

    for service in service_times:
        cluster = build_cluster(n_nodes=3)
        cluster.register_event("E9EVT")
        sink = cluster.create_object(Sink, node=2)
        probe = cluster.create_object(Probe, node=1)
        victim = cluster.spawn(sink, "absorb", service, at=2)
        cluster.run(until=0.1)
        windows = {}
        for sync in (False, True):
            thread = cluster.spawn(probe, "fire", victim.tid, sync, at=1)
            cluster.run(until=cluster.now + service + 1.0)
            windows[sync] = thread.completion.result()
        table.add(service * 1e3, windows[False] * 1e3, windows[True] * 1e3,
                  ratio(windows[True], max(windows[False], 1e-12)))
    table.note("'Synchronous send will block, until it is explicitly "
               "resumed by a handler. Asynchronous send … does not block'")
    return table




# ---------------------------------------------------------------------------
# A1 — ablations of design choices
# ---------------------------------------------------------------------------

def run_ablations() -> Table:
    """Toggle the design choices DESIGN.md calls out, one at a time."""
    table = Table(
        title="A1: ablations of design choices",
        columns=["ablation", "setting", "metric", "value"])

    # 1. partial-result notification (§1): cooperative search
    from repro.apps.search import run_search
    for notify in (True, False):
        cluster = build_cluster(n_nodes=4)
        result = run_search(cluster, workers=4, space=400, seed=7,
                            notify=notify)
        table.add("partial-result notification",
                  "on" if notify else "off",
                  "candidates explored", result.explored)

    # 2. ABORT-on-unwind (§6.3): object cleanup notification
    for notify_abort in (True, False):
        cluster = build_cluster(n_nodes=4,
                                notify_abort_on_unwind=notify_abort)
        from repro.bench.workloads import CtrlCWorkload
        from repro.locks import LockManager
        mgr = cluster.create_object(LockManager, node=3)
        root_obj = cluster.create_object(CtrlCWorkload, node=0)
        worker_obj = cluster.create_object(CtrlCWorkload, node=1)
        gid = cluster.new_group()
        root = cluster.spawn(root_obj, "main", worker_obj, mgr, 4, True,
                             at=0, group=gid)
        cluster.run(until=2.0)
        press_ctrl_c(cluster, root.tid)
        cluster.run()
        aborts = (len(cluster.get_object(root_obj).aborted_tids)
                  + len(cluster.get_object(worker_obj).aborted_tids))
        table.add("ABORT on unwind",
                  "on" if notify_abort else "off",
                  "object ABORT deliveries", aborts)

    # 3. handler context placement (§4.1): messages per delivery when the
    # thread is far from the attaching object
    class FarHome(DistObject):
        @entry
        def arm_and_go(self, ctx, far, use_current):
            if use_current:
                def probe(hctx, block):
                    yield hctx.compute(1e-6)
                    return Decision.RESUME
                yield ctx.attach_handler("A1EVT", probe)
            else:
                yield ctx.attach_handler("A1EVT", "attached_probe")
            result = yield ctx.invoke(far, "hold_far")
            return result

        @entry
        def hold_far(self, ctx):
            yield ctx.sleep(1e6)

        from repro.objects.base import handler_entry as _he

        @_he
        def attached_probe(self, ctx, block):
            yield ctx.compute(1e-6)
            return Decision.RESUME

    for use_current in (True, False):
        cluster = build_cluster(n_nodes=4)
        cluster.register_event("A1EVT")
        home = cluster.create_object(FarHome, node=0)
        far = cluster.create_object(FarHome, node=3)
        thread = cluster.spawn(home, "arm_and_go", far, use_current, at=0)
        cluster.run(until=1.0)
        before = cluster.fabric.stats.sent
        for _ in range(10):
            cluster.raise_event("A1EVT", thread.tid, from_node=3)
            cluster.run(until=cluster.now + 0.2)
        table.add("handler context",
                  "current (per-thread memory)" if use_current
                  else "attaching object",
                  "msgs/delivery", (cluster.fabric.stats.sent - before) / 10)

    # 4. DSM false sharing: fields per page under write-write sharing
    class Pair(DistObject):
        dsm_fields = {"a": 0, "b": 0}

        @entry
        def write_field(self, ctx, name, n):
            for i in range(n):
                yield ctx.write(name, i)

    for fields_per_page in (1, 2):
        cluster = build_cluster(n_nodes=3,
                                dsm_fields_per_page=fields_per_page)
        cap = cluster.create_object(Pair, node=0, transport="dsm")
        cluster.spawn(cap, "write_field", "a", 20, at=1)
        cluster.spawn(cap, "write_field", "b", 20, at=2)
        cluster.run()
        table.add("DSM layout", f"{fields_per_page} field(s)/page",
                  "invalidations",
                  cluster.dsm.protocol_stats()["invalidations"])
    return table

ALL_EXPERIMENTS = {
    "table1": run_table1,
    "e2": run_e2,
    "e3": run_e3,
    "e4": run_e4,
    "e5": run_e5,
    "e6": run_e6,
    "e7": run_e7,
    "e8": run_e8,
    "e9": run_e9,
    "a1": run_ablations,
}


def run_everything(show: bool = True) -> dict[str, Table]:
    """Run every experiment; used by ``examples`` and EXPERIMENTS.md."""
    results = {}
    for name, fn in ALL_EXPERIMENTS.items():
        table = fn()
        results[name] = table
        if show:
            table.show()
    return results
