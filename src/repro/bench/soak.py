"""Million-post soak macro-bench (E12): the hot-path speed trajectory.

Three phases exercise the post→route→deliver path end to end, sized by
one total post budget (≥1M for the committed run) and Zipf-skewed object
popularity so hot ``(object, event)`` routing-table entries dominate the
way they do in real event systems:

* ``burst`` — the bulk of the budget: open-loop bursts of object-directed
  posts at a Zipf-popular object population, raised on the objects' home
  node (the kernel fast path: no locator, no fabric messages). This is
  the throughput ceiling of the delivery engine itself.
* ``fanout`` — group-multicast posts delivered to member threads spread
  across nodes; one raise traverses the (batched) routing stack once per
  fan-out, and the phase throughput counts member deliveries.
* ``durable`` — remote durable posts: journaled write-ahead at the
  origin, sent over the reliable channel, acked and resolved through the
  outbox. The expensive end of the spectrum.

Wall-clock throughput and virtual-time p99 delivery latency per phase
land in ``BENCH_soak.json`` so every future PR can check the speed
trajectory; everything deterministic (post/delivery counts, simulator
events, scheduler stats) is reported separately from wall-clock so
same-seed runs compare bit-for-bit across backends.

Run it::

    PYTHONPATH=src python -m repro.bench.soak --posts 1000000
    PYTHONPATH=src python -m repro.bench.soak --posts 20000 --json /dev/null
    PYTHONPATH=src python -m repro.bench.soak --profile   # cProfile top-20
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any

from repro import Cluster, ClusterConfig, DistObject, on_event
from repro.bench.harness import Table, emit_json
from repro.bench.workloads import EventSink

SOAK_EVENT = "SOAK"

#: burst wall_posts/s of the committed BENCH_fastpath.json baseline this
#: campaign is measured against (PR 4's reliable-channel burst ceiling)
FASTPATH_BASELINE_POSTS_PER_SEC = 11723.7

#: trace categories muted for soak runs — a million posts would other-
#: wise accumulate gigabytes of TraceRecords; counts are still kept
MUTED_CATEGORIES = ("event", "object", "thread", "net", "store",
                    "supervise", "invoke", "dsm", "rpc")


@dataclass
class SoakSpec:
    """One soak configuration; the phase split is fractions of ``posts``."""

    seed: int = 0
    #: total post budget across all three phases (the committed
    #: BENCH_soak.json run uses >= 1M)
    posts: int = 1_000_000
    burst_frac: float = 0.80
    fanout_frac: float = 0.15  # durable gets the remainder
    #: Zipf object population for the burst/durable phases
    objects: int = 64
    zipf_s: float = 1.1
    #: posts fired per burst instant
    burst: int = 16
    #: virtual seconds between burst instants
    gap: float = 2e-3
    #: members per fan-out group (fanout throughput counts deliveries)
    group_size: int = 4
    link_latency: float = 1e-3
    #: scheduler backend for the measured run; the acceptance criterion
    #: is stated for the wheel + slab + batched-routing path
    scheduler: str = "wheel"
    wheel_tick: float = 1e-3
    wheel_slots: int = 4096
    #: retained latency samples per phase (drop-oldest, deterministic)
    latency_window: int = 4096

    def phase_budget(self) -> dict[str, int]:
        burst = int(self.posts * self.burst_frac)
        fanout = int(self.posts * self.fanout_frac)
        # fan-out counts member deliveries; round down to whole raises
        fanout -= fanout % self.group_size
        durable = self.posts - burst - fanout
        return {"burst": burst, "fanout": fanout, "durable": durable}


class SoakSink(DistObject):
    """Passive object absorbing soak posts; samples delivery latency."""

    def __init__(self, samples: deque):
        super().__init__()
        self.seen = 0
        self._samples = samples

    @on_event(SOAK_EVENT)
    def on_soak(self, ctx, block):
        yield ctx.compute(1e-6)
        self.seen += 1
        self._samples.append(ctx.now - block.raised_at)
        return None


@dataclass
class PhaseResult:
    """One phase's figures (wall-clock separated from deterministic)."""

    phase: str
    posts: int
    elapsed: float
    sim_events: int
    messages: int
    p99_latency: float
    scheduler_stats: dict[str, Any]
    extra: dict[str, Any] = field(default_factory=dict)

    @property
    def posts_per_sec(self) -> float:
        return self.posts / self.elapsed if self.elapsed else 0.0

    def row(self) -> dict[str, Any]:
        data = {
            "phase": self.phase,
            "posts": self.posts,
            "wall_posts_per_sec": round(self.posts_per_sec, 1),
            "sim_events_per_post": round(self.sim_events / self.posts, 2),
            "msgs_per_post": round(self.messages / self.posts, 4),
            "p99_latency": round(self.p99_latency, 6),
            "wheel_spills": self.scheduler_stats.get("wheel_spills", 0),
            "wheel_migrations": self.scheduler_stats.get(
                "wheel_migrations", 0),
            "compactions": self.scheduler_stats.get("compactions", 0),
            "pending_at_end": self.scheduler_stats.get("pending", 0),
        }
        data.update(self.extra)
        return data

def deterministic_view(row: dict[str, Any]) -> dict[str, Any]:
    """The same-seed-comparable subset of a phase row."""
    return {k: v for k, v in row.items() if k != "wall_posts_per_sec"}


def _p99(samples: deque) -> float:
    if not samples:
        return 0.0
    ordered = sorted(samples)
    return ordered[min(len(ordered) - 1, int(len(ordered) * 0.99))]


def _build(spec: SoakSpec, **overrides: Any) -> Cluster:
    knobs: dict[str, Any] = dict(
        seed=spec.seed, link_latency=spec.link_latency,
        scheduler=spec.scheduler, wheel_tick=spec.wheel_tick,
        wheel_slots=spec.wheel_slots, trace_net=False)
    knobs.update(overrides)
    cluster = Cluster(ClusterConfig(**knobs))
    cluster.tracer.mute(*MUTED_CATEGORIES)
    cluster.register_event(SOAK_EVENT)
    return cluster


def _zipf_targets(spec: SoakSpec, count: int, stream: str) -> list[int]:
    """``count`` Zipf-skewed object indices from a dedicated rng stream."""
    import random

    # seeding from a string hashes with sha512 inside Random — stable
    # across processes, unlike hash() of a str-containing tuple
    rng = random.Random(f"{spec.seed}:{stream}:{spec.objects}")
    weights = [1.0 / (rank + 1) ** spec.zipf_s for rank in range(spec.objects)]
    return rng.choices(range(spec.objects), weights=weights, k=count)


def run_burst_phase(spec: SoakSpec, posts: int) -> PhaseResult:
    """Open-loop local object-post bursts over a Zipf population."""
    cluster = _build(spec, n_nodes=2)
    samples: deque = deque(maxlen=spec.latency_window)
    caps = [cluster.create_object(SoakSink, samples, node=0)
            for _ in range(spec.objects)]
    targets = _zipf_targets(spec, posts, "burst")
    sim, t0 = cluster.sim, cluster.now
    raise_external = cluster.events.raise_external
    burst, gap = spec.burst, spec.gap

    # Self-rescheduling feeder: O(1) queue growth instead of a million
    # pre-scheduled fire callbacks.
    def pump(i: int) -> None:
        base = i * burst
        stop = min(base + burst, posts)
        for pid in range(base, stop):
            raise_external(SOAK_EVENT, caps[targets[pid]], from_node=0,
                           user_data=pid)
        if stop < posts:
            sim.call_at(t0 + (i + 1) * gap, pump, i + 1)

    sim.call_at(t0, pump, 0)
    wall = time.perf_counter()
    cluster.run(max_events=None)  # a 1M-post run legitimately needs >2M
    elapsed = time.perf_counter() - wall

    seen = sum(cluster.get_object(cap).seen for cap in caps)
    assert seen == posts, f"burst phase lost posts: {seen}/{posts}"
    return PhaseResult(
        phase="burst", posts=posts, elapsed=elapsed,
        sim_events=cluster.sim.events_processed,
        messages=cluster.message_stats()["sent"],
        p99_latency=_p99(samples),
        scheduler_stats=cluster.scheduler_stats())


def run_fanout_phase(spec: SoakSpec, deliveries: int) -> PhaseResult:
    """Group-multicast posts; throughput counts member deliveries."""
    group = spec.group_size
    raises = deliveries // group
    cluster = _build(spec, n_nodes=group + 1)
    gid = cluster.new_group()
    sinks = [cluster.create_object(EventSink, node=node)
             for node in range(1, group + 1)]
    for node, cap in enumerate(sinks, start=1):
        cluster.spawn(cap, "absorb", SOAK_EVENT, 1e9, at=node, group=gid)
    cluster.run(until=cluster.now + 0.1)  # handlers attach

    sim, t0 = cluster.sim, cluster.now
    raise_external = cluster.events.raise_external
    gap = spec.gap

    def pump(i: int) -> None:
        raise_external(SOAK_EVENT, gid, from_node=0, user_data=i)
        if i + 1 < raises:
            sim.call_at(t0 + (i + 1) * gap, pump, i + 1)

    if raises:
        sim.call_at(t0, pump, 0)
    wall = time.perf_counter()
    cluster.run(until=t0 + raises * spec.gap + 2.0, max_events=None)
    elapsed = time.perf_counter() - wall

    delivered = cluster.tracer.count("event", "deliver")
    assert delivered >= raises * group, \
        f"fanout phase lost deliveries: {delivered}/{raises * group}"
    latency = cluster.events.delivery_latency_summary()
    return PhaseResult(
        phase="fanout", posts=raises * group, elapsed=elapsed,
        sim_events=cluster.sim.events_processed,
        messages=cluster.message_stats()["sent"],
        p99_latency=latency.get("p99", 0.0),
        scheduler_stats=cluster.scheduler_stats(),
        extra={"raises": raises, "group_size": group})


def run_durable_phase(spec: SoakSpec, posts: int) -> PhaseResult:
    """Remote durable posts: journal, reliable send, outbox resolution."""
    cluster = _build(spec, n_nodes=2, durable_delivery=True)
    samples: deque = deque(maxlen=spec.latency_window)
    objects = max(1, spec.objects // 8)
    caps = [cluster.create_object(SoakSink, samples, node=1)
            for _ in range(objects)]
    targets = [t % objects for t in _zipf_targets(spec, posts, "durable")]
    sim, t0 = cluster.sim, cluster.now
    raise_external = cluster.events.raise_external
    burst, gap = spec.burst, spec.gap

    def pump(i: int) -> None:
        base = i * burst
        stop = min(base + burst, posts)
        for pid in range(base, stop):
            raise_external(SOAK_EVENT, caps[targets[pid]], from_node=0,
                           user_data=pid)
        if stop < posts:
            sim.call_at(t0 + (i + 1) * gap, pump, i + 1)

    if posts:
        sim.call_at(t0, pump, 0)
    wall = time.perf_counter()
    cluster.run(max_events=None)
    elapsed = time.perf_counter() - wall

    seen = sum(cluster.get_object(cap).seen for cap in caps)
    assert seen == posts, f"durable phase lost posts: {seen}/{posts}"
    store = cluster.durability_stats()
    assert store.get("pending", 0) == 0, \
        f"durable phase left {store['pending']} outbox entries pending"
    return PhaseResult(
        phase="durable", posts=posts, elapsed=elapsed,
        sim_events=cluster.sim.events_processed,
        messages=cluster.message_stats()["sent"],
        p99_latency=_p99(samples),
        scheduler_stats=cluster.scheduler_stats(),
        extra={"journal_commits": store.get("commits", 0),
               "journal_appends": store.get("appends", 0)})


def run_soak(spec: SoakSpec | None = None) -> tuple[Table, dict[str, Any]]:
    """Run all three phases; returns (table, results payload)."""
    spec = spec or SoakSpec()
    budget = spec.phase_budget()
    table = Table(
        title=f"Soak (E12): {spec.posts} posts, scheduler={spec.scheduler}, "
              f"{spec.objects} Zipf(s={spec.zipf_s}) objects, "
              f"burst={spec.burst}",
        columns=["phase", "posts", "wall_posts/s", "sim_ev/post",
                 "msgs/post", "p99_lat", "spills", "migrations",
                 "compactions"])
    rows: dict[str, dict[str, Any]] = {}
    runners = [("burst", run_burst_phase), ("fanout", run_fanout_phase),
               ("durable", run_durable_phase)]
    total_posts = 0
    total_elapsed = 0.0
    for phase, runner in runners:
        result = runner(spec, budget[phase])
        row = result.row()
        rows[phase] = row
        total_posts += result.posts
        total_elapsed += result.elapsed
        table.add(phase, row["posts"], row["wall_posts_per_sec"],
                  row["sim_events_per_post"], row["msgs_per_post"],
                  row["p99_latency"], row["wheel_spills"],
                  row["wheel_migrations"], row["compactions"])
    overall = round(total_posts / total_elapsed, 1) if total_elapsed else 0.0
    burst_rate = rows["burst"]["wall_posts_per_sec"]
    speedup = round(burst_rate / FASTPATH_BASELINE_POSTS_PER_SEC, 2)
    table.note(f"overall {total_posts} posts at {overall} posts/s wall; "
               f"burst is {speedup}x the BENCH_fastpath burst baseline "
               f"({FASTPATH_BASELINE_POSTS_PER_SEC} posts/s)")
    table.note("burst: local object posts (no fabric); fanout: group "
               "multicast counted in member deliveries; durable: "
               "journaled remote posts over the reliable channel")
    table.note("p99_lat is virtual raise->deliver seconds; wall_posts/s "
               "is host wall-clock, all other columns deterministic")
    payload = {
        "phases": rows,
        "total_posts": total_posts,
        "overall_posts_per_sec": overall,
        "burst_speedup_vs_fastpath_baseline": speedup,
        "fastpath_baseline_posts_per_sec": FASTPATH_BASELINE_POSTS_PER_SEC,
        "spec": {
            "seed": spec.seed, "posts": spec.posts,
            "burst_frac": spec.burst_frac, "fanout_frac": spec.fanout_frac,
            "objects": spec.objects, "zipf_s": spec.zipf_s,
            "burst": spec.burst, "gap": spec.gap,
            "group_size": spec.group_size, "scheduler": spec.scheduler,
            "wheel_tick": spec.wheel_tick, "wheel_slots": spec.wheel_slots,
        },
    }
    return table, payload


def main(argv: list[str] | None = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.soak", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--posts", type=int, default=1_000_000,
                        help="total post budget (default: 1000000)")
    parser.add_argument("--scheduler", choices=("heap", "wheel"),
                        default="wheel")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--json", default="BENCH_soak.json",
                        help="output path (default: BENCH_soak.json)")
    parser.add_argument("--profile", action="store_true",
                        help="run under cProfile; print top-20 cumulative "
                             "hotspots")
    args = parser.parse_args(argv)

    spec = SoakSpec(posts=args.posts, scheduler=args.scheduler,
                    seed=args.seed)
    if args.profile:
        from repro.bench.harness import profile_call
        table, payload = profile_call(run_soak, spec)
    else:
        table, payload = run_soak(spec)
    table.show()
    emit_json(table, args.json, "soak", **payload)
    print(f"\nwrote {args.json}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
