"""Run the full experiment suite: ``python -m repro.bench``.

Prints every table from :mod:`repro.bench.experiments`; pass experiment
names (``table1 e2 e5 …``) to run a subset.
"""

from __future__ import annotations

import sys

from repro.bench.experiments import ALL_EXPERIMENTS


def main(argv: list[str]) -> int:
    names = argv or list(ALL_EXPERIMENTS)
    unknown = [n for n in names if n not in ALL_EXPERIMENTS]
    if unknown:
        print(f"unknown experiments: {', '.join(unknown)}; "
              f"available: {', '.join(ALL_EXPERIMENTS)}")
        return 2
    for name in names:
        ALL_EXPERIMENTS[name]().show()
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
