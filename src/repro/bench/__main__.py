"""Run the full experiment suite: ``python -m repro.bench``.

Prints every table from :mod:`repro.bench.experiments`; pass experiment
names (``table1 e2 e5 …``) to run a subset. ``--profile`` wraps each
run in cProfile and prints the top-20 cumulative hotspots
(:func:`repro.bench.harness.profile_call`).
"""

from __future__ import annotations

import sys

from repro.bench.experiments import ALL_EXPERIMENTS
from repro.bench.harness import profile_call


def main(argv: list[str]) -> int:
    profile = "--profile" in argv
    names = [a for a in argv if a != "--profile"] or list(ALL_EXPERIMENTS)
    unknown = [n for n in names if n not in ALL_EXPERIMENTS]
    if unknown:
        print(f"unknown experiments: {', '.join(unknown)}; "
              f"available: {', '.join(ALL_EXPERIMENTS)}")
        return 2
    for name in names:
        if profile:
            profile_call(ALL_EXPERIMENTS[name]).show()
        else:
            ALL_EXPERIMENTS[name]().show()
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
