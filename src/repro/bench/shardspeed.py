"""E15 — cross-shard & durable-path speed: codec, batching, skip-ahead.

PR 8's sharded backend proved determinism at 128 nodes but paid for it
in pickling (one ``pickle.dumps`` per cross-shard message) and barrier
round-trips (one parent↔worker exchange per conservative window, busy
or not).  This experiment measures the speed campaign that removed
both costs, plus the journal slab/checkpoint work on the durable path:

* **sharded pairs** — each (nodes, shards) point runs twice: once with
  the new defaults (compact wire codec, one encoded blob per
  (shard, window), quiescent skip-ahead, fork start method) and once
  with every knob forced to the PR 8 behaviour (per-message pickle,
  per-message pipe sends, every window barriered, spawn).  The pair
  must produce **bit-identical digests** — the optimisations are
  observationally pure — and the default row's speedup is the figure.
* **sim rows** — the single-process reference at the same node counts,
  pinning the single-vs-sharded crossover (the node count where the
  sharded backend first beats one process on this box).
* **skip-ahead rows** — a sparse workload (long idle gaps between
  posts) run with and without ``shard_quiescent_skip``: same digest,
  far fewer barriered windows.
* **durable row** — the E12 soak's durable phase re-run against the
  committed baseline (journal slab records, pooled appends, O(delta)
  checkpoint snapshots).

Run::

    PYTHONPATH=src python -m repro.bench.shardspeed          # full sweep
    PYTHONPATH=src python -m repro.bench.shardspeed --quick
"""

from __future__ import annotations

import argparse
from dataclasses import replace
from typing import Any

from repro.bench.harness import Table, emit_json, ratio
from repro.bench.scale import (
    ScaleSpec,
    run_scale_local,
    run_scale_sharded,
)

#: the PR 8 sharded behaviour, forced knob by knob
LEGACY_KNOBS = dict(wire_codec=False, shard_window_batching=False,
                    shard_quiescent_skip=False,
                    shard_start_method="spawn")

#: committed BENCH_soak.json durable-phase baseline (posts/s wall),
#: measured before the journal slab / checkpoint-snapshot work
DURABLE_BASELINE_POSTS_PER_SEC = 9384.4


def run_sharded_with(spec: ScaleSpec, **knobs: Any) -> dict:
    """``run_scale_sharded`` with ClusterConfig overrides forced in.

    The overrides win over whatever the spec would build, so a single
    spec can be run under both the default and the legacy knob sets —
    the digest-equality comparison E15 is built on.
    """
    if not knobs:
        return run_scale_sharded(spec)
    patched = replace(spec)
    base_config = ScaleSpec.config

    def config(**overrides: Any) -> Any:
        overrides.update(knobs)
        return base_config(patched, **overrides)

    patched.config = config  # type: ignore[method-assign]
    return run_scale_sharded(patched)


def run_pair(spec: ScaleSpec) -> tuple[dict, dict]:
    """(default-knobs row, legacy-knobs row); digests must match."""
    fast = run_scale_sharded(spec)
    slow = run_sharded_with(spec, **LEGACY_KNOBS)
    assert fast["digest"] == slow["digest"], (
        f"codec/batching changed the run at n={spec.n_nodes}: "
        f"{fast['digest'][:12]} != {slow['digest'][:12]}")
    assert fast["executed"] == fast["raised"] == spec.total_posts
    return fast, slow


def sparse_spec(quick: bool = False) -> ScaleSpec:
    """A workload that leaves most conservative windows quiescent.

    Posts are spaced 20 windows apart (interval = 20x link_latency), so
    a dense barrier loop burns ~20 empty round-trips per useful one —
    exactly what quiescent skip-ahead elides.
    """
    return ScaleSpec(n_nodes=8 if quick else 16, shard_count=2,
                     posts_per_node=10 if quick else 20,
                     interval=0.1, link_latency=5e-3)


def run_skip_pair(spec: ScaleSpec) -> tuple[dict, dict]:
    """(skip-ahead row, dense-barrier row); same digest, fewer windows."""
    skip = run_scale_sharded(spec)
    dense = run_sharded_with(spec, shard_quiescent_skip=False)
    assert skip["digest"] == dense["digest"], (
        "quiescent skip-ahead changed the run: "
        f"{skip['digest'][:12]} != {dense['digest'][:12]}")
    assert skip["windows"] < dense["windows"], (
        f"skip-ahead elided nothing: {skip['windows']} vs "
        f"{dense['windows']} windows")
    return skip, dense


def run_durable_row(posts: int = 50_000) -> dict:
    """Re-run the E12 soak durable phase (journaled remote posts)."""
    from repro.bench.soak import SoakSpec, run_durable_phase
    spec = SoakSpec(posts=max(posts, 1))
    result = run_durable_phase(spec, posts)
    row = result.row()
    row["speedup_vs_baseline"] = round(
        ratio(result.posts_per_sec, DURABLE_BASELINE_POSTS_PER_SEC), 2)
    return row


def pin_crossover(sim_rows: list[dict], fast_rows: list[dict]) -> int | None:
    """Smallest node count where sharded beats the one-process sim."""
    sim_by_n = {row["nodes"]: row["posts_per_sec"] for row in sim_rows}
    for row in sorted(fast_rows, key=lambda r: r["nodes"]):
        sim_rate = sim_by_n.get(row["nodes"])
        if sim_rate is not None and row["posts_per_sec"] >= sim_rate:
            return row["nodes"]
    return None


# ----------------------------------------------------------------------
# the E15 sweep
# ----------------------------------------------------------------------

def run_e15(sharded=((16, 2), (64, 4), (128, 8)),
            posts_per_node: int = 200, quick: bool = False,
            durable_posts: int = 50_000) -> tuple[Table, dict]:
    if quick:
        sharded = ((16, 2),)
        posts_per_node = 60
        durable_posts = 10_000
    table = Table(
        title="E15: cross-shard & durable-path speed",
        columns=["row", "nodes", "shards", "posts", "posts/s (wall)",
                 "windows", "speedup", "digest[:12]"])
    rows: dict[str, Any] = {"sim": [], "sharded": [], "skip": {},
                            "durable": None, "crossover_nodes": None}

    for n, shards in sharded:
        spec = ScaleSpec(n_nodes=n, shard_count=shards,
                         posts_per_node=posts_per_node)
        sim_row = run_scale_local(replace(spec, shard_count=1))
        rows["sim"].append(sim_row)
        table.add("sim", n, 1, sim_row["raised"],
                  round(sim_row["posts_per_sec"], 1), "-", "-",
                  sim_row["digest"][:12])
        fast, slow = run_pair(spec)
        speedup = round(ratio(fast["posts_per_sec"],
                              slow["posts_per_sec"]), 2)
        rows["sharded"].append({"default": fast, "legacy": slow,
                                "speedup": speedup})
        table.add("sharded legacy", n, shards, slow["raised"],
                  round(slow["posts_per_sec"], 1), slow["windows"],
                  "1.0", slow["digest"][:12])
        table.add("sharded default", n, shards, fast["raised"],
                  round(fast["posts_per_sec"], 1), fast["windows"],
                  f"{speedup}x", fast["digest"][:12])

    skip, dense = run_skip_pair(sparse_spec(quick))
    rows["skip"] = {"skip": skip, "dense": dense}
    table.add("sparse dense", skip["nodes"], skip["shards"],
              dense["raised"], round(dense["posts_per_sec"], 1),
              dense["windows"], "1.0", dense["digest"][:12])
    table.add("sparse skip-ahead", skip["nodes"], skip["shards"],
              skip["raised"], round(skip["posts_per_sec"], 1),
              skip["windows"],
              f"{round(ratio(skip['posts_per_sec'], dense['posts_per_sec']), 2)}x",
              skip["digest"][:12])

    durable = run_durable_row(durable_posts)
    rows["durable"] = durable
    table.add("durable phase", 2, 1, durable["posts"],
              durable["wall_posts_per_sec"], "-",
              f"{durable['speedup_vs_baseline']}x vs baseline", "-")

    fast_rows = [pair["default"] for pair in rows["sharded"]]
    crossover = pin_crossover(rows["sim"], fast_rows)
    rows["crossover_nodes"] = crossover
    if crossover is not None:
        table.note(f"single-vs-sharded crossover: sharded first beats "
                   f"the one-process sim at {crossover} nodes")
    else:
        table.note("no crossover in this sweep: the one-process sim "
                   "stayed ahead at every measured node count")
    table.note("every sharded default/legacy pair and the sparse "
               "skip/dense pair are digest-identical: the speedups are "
               "observationally pure")
    table.note(f"durable baseline {DURABLE_BASELINE_POSTS_PER_SEC} "
               "posts/s is the committed BENCH_soak.json durable phase")
    return table, rows


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(description="E15 shard-speed bench")
    parser.add_argument("--quick", action="store_true")
    parser.add_argument("--json", default="BENCH_shardspeed.json")
    args = parser.parse_args(argv)
    table, rows = run_e15(quick=args.quick)
    print(table.render())
    if args.json and args.json != "/dev/null":
        emit_json(table, args.json, experiment="e15-shardspeed",
                  quick=args.quick, rows=rows)


if __name__ == "__main__":
    main()
