"""E14 — scale-out runtime: posts/s and locator cost vs node count.

The transport port (PR 8) exists so benches can leave the one-core
simulator behind.  This experiment measures three things:

* **sim rows** — the reference single-process backend at 4→128 nodes:
  wall-clock posts/s for the mixed local/remote object-post workload
  (the same scenario function the sharded workers run, so the rows are
  apples-to-apples);
* **sharded rows** — the identical workload partitioned across worker
  processes under conservative time-window synchronization.  Every row
  re-checks the ground truth (`executed == raised`, no losses) and the
  same-seed digest, which must be reproducible run over run;
* **locator rows** — §7.1 thread-location message cost per post as the
  cluster grows (broadcast's O(n) vs path/cached O(1)), the figure that
  motivates the SCD-broadcast direction in the roadmap;
* a **tcp loopback smoke** row proving the reliable+durable stack runs
  end to end on real sockets with wall-clock timers.

Run::

    PYTHONPATH=src python -m repro.bench.scale            # full sweep
    PYTHONPATH=src python -m repro.bench.scale --quick
"""

from __future__ import annotations

import argparse
import hashlib
import random
import time
from dataclasses import dataclass, replace
from typing import Any, Callable

from repro import Cluster, ClusterConfig, DistObject, on_event
from repro.bench.harness import Table, emit_json
from repro.kernel.config import shard_bounds
from repro.objects.capability import Capability

SCALE_EVENT = "SCALE"

#: trace categories muted for scale runs (same list as the E12 soak)
MUTED_CATEGORIES = ("event", "object", "thread", "net", "store",
                    "supervise", "invoke", "dsm", "rpc")


class ScaleSink(DistObject):
    """Passive per-node object absorbing scale posts."""

    def __init__(self):
        super().__init__()
        self.seen = 0
        self.by_source: dict[int, int] = {}

    @on_event(SCALE_EVENT)
    def on_scale(self, ctx, block):
        yield ctx.compute(1e-6)
        self.seen += 1
        src = block.raiser_node
        self.by_source[src] = self.by_source.get(src, 0) + 1


def sink_cap(n_nodes: int, shard_count: int, node: int) -> Capability:
    """The capability of ``node``'s sink, computable from *any* shard.

    Every worker creates exactly one :class:`ScaleSink` per local node
    in ascending node order, and per-worker oid counters start at 1 —
    so the sink of global node ``g`` has oid ``g - shard_lo + 1`` in
    its owning worker's directory.  With ``shard_count == 1`` this
    degenerates to ``g + 1``, matching the single-process run.
    """
    lo = 0
    for shard in range(shard_count):
        lo, hi = shard_bounds(n_nodes, shard_count, shard)
        if lo <= node < hi:
            break
    return Capability(oid=node - lo + 1, home=node, transport="rpc",
                      cls_name="ScaleSink")


@dataclass
class ScaleSpec:
    """One scale workload configuration."""

    seed: int = 0
    n_nodes: int = 16
    shard_count: int = 4
    #: posts each node raises over the run
    posts_per_node: int = 200
    #: per-node raise interval, virtual seconds
    interval: float = 2e-3
    #: fraction of posts aimed at a uniformly-random *other* node
    remote_fraction: float = 0.3
    #: cross-node latency; doubles as the sharded lookahead window
    link_latency: float = 5e-3
    reliable: bool = False
    durable: bool = False

    @property
    def total_posts(self) -> int:
        return self.n_nodes * self.posts_per_node

    def config(self, **overrides: Any) -> ClusterConfig:
        kwargs = dict(
            n_nodes=self.n_nodes, seed=self.seed,
            link_latency=self.link_latency,
            reliable_delivery=self.reliable,
            durable_delivery=self.durable,
            trace_net=False)
        kwargs.update(overrides)
        return ClusterConfig(**kwargs)


# ----------------------------------------------------------------------
# the shared scenario (single-process AND per-shard worker)
# ----------------------------------------------------------------------

def _node_targets(spec_args: dict, node: int, n_nodes: int) -> list[int]:
    """Deterministic target node per post for one raiser node."""
    rng = random.Random(int(spec_args["seed"]) * 100003 + node)
    remote_fraction = float(spec_args["remote_fraction"])
    targets = []
    for _ in range(int(spec_args["posts_per_node"])):
        if n_nodes > 1 and rng.random() < remote_fraction:
            other = rng.randrange(n_nodes - 1)
            targets.append(other if other < node else other + 1)
        else:
            targets.append(node)
    return targets


def posts_scenario(ctx) -> Callable[[], dict]:
    """Per-shard setup for the mixed local/remote object-post workload.

    ``ctx`` is a :class:`repro.transport.sharded.ShardContext` (the
    single-process run builds an identical one with one shard).
    Required ``ctx.args``: seed, posts_per_node, interval,
    remote_fraction.
    """
    cluster = ctx.cluster
    args = ctx.args
    interval = float(args["interval"])
    cluster.register_event(SCALE_EVENT)
    cluster.tracer.mute(*MUTED_CATEGORIES)
    sinks = {}
    for node in ctx.local_nodes:
        cap = cluster.create_object(ScaleSink, node=node)
        sinks[node] = cluster.get_object(cap)
    raised = {"n": 0}
    sim = cluster.sim
    # one self-rescheduling pump per raiser node; raisers are staggered
    # inside the interval so 128 nodes do not all fire the same instant
    def make_pump(node: int, targets: list[int],
                  phase: float) -> Callable[[int], None]:
        def pump(i: int) -> None:
            cap = sink_cap(ctx.n_nodes, ctx.shard_count, targets[i])
            cluster.raise_event(SCALE_EVENT, cap, from_node=node,
                                user_data=(node, i))
            raised["n"] += 1
            if i + 1 < len(targets):
                sim.call_at(phase + (i + 1) * interval, pump, i + 1)
        return pump

    for node in ctx.local_nodes:
        targets = _node_targets(args, node, ctx.n_nodes)
        phase = interval * (node + 1) / (ctx.n_nodes + 1)
        if targets:
            sim.call_at(phase, make_pump(node, targets, phase), 0)

    def finish() -> dict:
        per_node = {node: sinks[node].seen for node in ctx.local_nodes}
        material = repr(sorted(
            (node, sinks[node].seen, sorted(sinks[node].by_source.items()))
            for node in ctx.local_nodes))
        return {
            "raised": raised["n"],
            "executed": sum(per_node.values()),
            "per_node": per_node,
            "sha": hashlib.sha256(material.encode()).hexdigest(),
        }

    return finish


def combine_digest(shard_results: list[dict]) -> str:
    """Run digest: order-sensitive hash over the per-shard hashes."""
    material = repr([r["sha"] for r in shard_results])
    return hashlib.sha256(material.encode()).hexdigest()


# ----------------------------------------------------------------------
# runners
# ----------------------------------------------------------------------

def _scenario_args(spec: ScaleSpec) -> dict:
    return {"seed": spec.seed, "posts_per_node": spec.posts_per_node,
            "interval": spec.interval,
            "remote_fraction": spec.remote_fraction}


def run_scale_local(spec: ScaleSpec) -> dict:
    """The workload on the single-process ``sim`` backend."""
    from repro.transport.sharded import ShardContext
    cluster = Cluster(spec.config())
    ctx = ShardContext(cluster=cluster, shard_index=0, shard_count=1,
                       n_nodes=spec.n_nodes,
                       local_nodes=range(spec.n_nodes),
                       args=_scenario_args(spec))
    finish = posts_scenario(ctx)
    started = time.perf_counter()
    cluster.run(max_events=None)
    wall = time.perf_counter() - started
    result = finish()
    return {
        "backend": "sim", "nodes": spec.n_nodes, "shards": 1,
        "raised": result["raised"], "executed": result["executed"],
        "wall": wall,
        "posts_per_sec": result["raised"] / wall if wall else 0.0,
        "digest": combine_digest([result]),
        "virtual_time": cluster.now,
    }


def run_scale_sharded(spec: ScaleSpec) -> dict:
    """The workload partitioned across ``spec.shard_count`` workers."""
    from repro.transport.sharded import run_sharded
    config = spec.config(transport="sharded",
                         shard_count=spec.shard_count)
    report = run_sharded(config, "repro.bench.scale:posts_scenario",
                         scenario_args=_scenario_args(spec))
    raised = sum(r["raised"] for r in report.shard_results)
    executed = sum(r["executed"] for r in report.shard_results)
    per_node: dict[int, int] = {}
    for result in report.shard_results:
        per_node.update(result["per_node"])
    return {
        "per_node": per_node,
        "backend": "sharded", "nodes": spec.n_nodes,
        "shards": spec.shard_count,
        "raised": raised, "executed": executed,
        "wall": report.wall_time,
        "posts_per_sec": raised / report.wall_time
        if report.wall_time else 0.0,
        "digest": combine_digest(report.shard_results),
        "virtual_time": report.virtual_time,
        "windows": report.windows,
        "cross_shard": report.cross_shard_messages,
    }


def run_locator_rows(node_counts=(4, 16, 64, 128), posts: int = 10,
                     locators=("broadcast", "path", "cached"),
                     depth: int = 2) -> list[dict]:
    """§7.1 locate messages per post as the cluster grows."""
    from repro.bench.experiments import _measure_posts
    from repro.bench.workloads import build_cluster, deep_thread
    rows = []
    for locator in locators:
        for n in node_counts:
            if depth >= n:
                continue
            cluster = build_cluster(n_nodes=n, locator=locator)
            thread = deep_thread(cluster, depth=depth)
            msgs, latency = _measure_posts(cluster, thread, posts,
                                           warmup=2)
            rows.append({"locator": locator, "nodes": n,
                         "locate_msgs_per_post": msgs,
                         "latency_ms": latency * 1e3})
    return rows


def run_tcp_smoke(n_nodes: int = 3, posts: int = 30,
                  wall_budget: float = 20.0) -> dict:
    """The reliable+durable stack end to end on real loopback TCP."""
    cluster = Cluster(ClusterConfig(
        n_nodes=n_nodes, transport="tcp", reliable_delivery=True,
        durable_delivery=True, link_latency=1e-3, trace_net=False))
    try:
        cluster.register_event(SCALE_EVENT)
        sinks = []
        for node in range(n_nodes):
            cap = cluster.create_object(ScaleSink, node=node)
            sinks.append(cluster.get_object(cap))
        started = time.perf_counter()
        for i in range(posts):
            target = sinks[(i + 1) % n_nodes]
            cluster.raise_event(SCALE_EVENT, target.cap,
                                from_node=i % n_nodes, user_data=i)
        deadline = started + wall_budget
        while (sum(s.seen for s in sinks) < posts
               and time.perf_counter() < deadline):
            cluster.run(until=cluster.now + 0.25)
        executed = sum(s.seen for s in sinks)
        wall = time.perf_counter() - started
        return {
            "backend": "tcp", "nodes": n_nodes, "shards": 1,
            "raised": posts, "executed": executed, "wall": wall,
            "posts_per_sec": executed / wall if wall else 0.0,
            "transport": cluster.transport_stats(),
            "durability": cluster.durability_stats(),
        }
    finally:
        cluster.close()


# ----------------------------------------------------------------------
# the E14 sweep
# ----------------------------------------------------------------------

def run_e14(sim_nodes=(4, 16, 64, 128), sharded=( (16, 2), (64, 4),
                                                  (128, 8)),
            posts_per_node: int = 200, quick: bool = False,
            tcp: bool = True) -> tuple[Table, dict]:
    if quick:
        sim_nodes = (4, 16)
        sharded = ((16, 2), (16, 4))
        posts_per_node = 60
    table = Table(
        title="E14: posts/s and locator cost vs node count",
        columns=["backend", "nodes", "shards", "posts", "executed",
                 "posts/s (wall)", "digest[:12]"])
    rows: dict[str, Any] = {"sim": [], "sharded": [], "locator": [],
                            "tcp": None}
    for n in sim_nodes:
        spec = ScaleSpec(n_nodes=n, posts_per_node=posts_per_node)
        row = run_scale_local(spec)
        _check_row(row)
        rows["sim"].append(row)
        table.add("sim", n, 1, row["raised"], row["executed"],
                  round(row["posts_per_sec"], 1), row["digest"][:12])
    for n, shards in sharded:
        spec = ScaleSpec(n_nodes=n, shard_count=shards,
                         posts_per_node=posts_per_node)
        row = run_scale_sharded(spec)
        _check_row(row)
        rows["sharded"].append(row)
        table.add("sharded", n, shards, row["raised"], row["executed"],
                  round(row["posts_per_sec"], 1), row["digest"][:12])
    rows["locator"] = run_locator_rows(
        node_counts=(4, 16) if quick else (4, 16, 64, 128),
        posts=5 if quick else 10)
    if tcp:
        row = run_tcp_smoke(posts=10 if quick else 30)
        assert row["executed"] == row["raised"], (
            f"tcp smoke lost posts: {row['executed']}/{row['raised']}")
        rows["tcp"] = row
        table.add("tcp", row["nodes"], 1, row["raised"],
                  row["executed"], round(row["posts_per_sec"], 1), "-")
    table.note("sharded digests are seed-reproducible; sim rows use the "
               "identical scenario for apples-to-apples posts/s")
    return table, rows


def _check_row(row: dict) -> None:
    assert row["executed"] == row["raised"], (
        f"{row['backend']} n={row['nodes']}: lost posts "
        f"({row['executed']}/{row['raised']})")


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(description="E14 scale bench")
    parser.add_argument("--quick", action="store_true")
    parser.add_argument("--no-tcp", action="store_true")
    parser.add_argument("--json", default="BENCH_scale.json")
    args = parser.parse_args(argv)
    table, rows = run_e14(quick=args.quick, tcp=not args.no_tcp)
    print(table.render())
    if args.json and args.json != "/dev/null":
        emit_json(table, args.json, experiment="e14-scale",
                  quick=args.quick, rows=rows)


if __name__ == "__main__":
    main()
