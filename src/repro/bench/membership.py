"""E16 — gossip membership: detection latency and load vs cluster size.

The SWIM layer's whole argument is a scaling one: the all-pairs
heartbeat detector costs every node O(n) messages per period, while
SWIM's one-probe-per-period plus piggybacked gossip costs O(1) — with
detection latency that stays flat as the cluster grows. This experiment
measures the claim directly:

* **detection rows** — crash one node in an otherwise idle cluster and
  measure, per live observer, how long until the victim is suspected
  (and, for SWIM, confirmed dead), plus the steady-state failure-
  detection message load per node per protocol period. SWIM is swept
  to 256 nodes; the heartbeat contrast stops at 64 (its all-pairs
  traffic is the point being made);
* **convergence row** — crash 10% of the cluster in the same instant
  (correlated failure) and measure how long until every surviving
  node's view marks every victim dead;
* **churn rows** — the chaos harness (:mod:`repro.bench.chaos`) with a
  scheduled join/leave/crash/recover churn riding on drops: every post
  must execute exactly once, surface a notice, or be quarantined;
* **sharded churn row** — the same churn discipline on the
  multi-process sharded transport: stable-half nodes exchange posts
  while the other half churns, with zero lost posts and every
  survivor's view converged (no suspects, no deads) once churn ends.

Run::

    PYTHONPATH=src python -m repro.bench.membership          # full sweep
    PYTHONPATH=src python -m repro.bench.membership --quick
"""

from __future__ import annotations

import argparse
import hashlib
import random
import statistics
import time
from typing import Any, Callable

from repro import Cluster, ClusterConfig
from repro.bench.chaos import ChaosSpec, ChurnSpec, run_chaos
from repro.bench.harness import Table, emit_json
from repro.bench.scale import ScaleSink, sink_cap

MEMBER_EVENT = "SCALE"  # reuse the ScaleSink handler event

#: trace categories muted for membership runs
MUTED_CATEGORIES = ("event", "object", "thread", "net", "store",
                    "supervise", "invoke", "dsm", "rpc", "membership",
                    "failure")


# ----------------------------------------------------------------------
# detection latency and per-node load (single-process sim)
# ----------------------------------------------------------------------

def _idle_cluster(n_nodes: int, mode: str, interval: float,
                  seed: int) -> Cluster:
    kwargs: dict[str, Any] = dict(n_nodes=n_nodes, seed=seed,
                                  trace_net=False)
    if mode == "swim":
        kwargs["swim_interval"] = interval
    else:
        kwargs["heartbeat_interval"] = interval
        kwargs["suspect_after"] = 3
    cluster = Cluster(ClusterConfig(**kwargs))
    cluster.tracer.mute(*MUTED_CATEGORIES)
    return cluster


def run_detection_row(n_nodes: int, mode: str, interval: float = 0.1,
                      seed: int = 0, warm: float = 2.0,
                      window: float = 2.0,
                      budget_periods: int = 60) -> dict:
    """Crash one node; measure observer detection latency and the
    steady-state failure-detection load per node per period."""
    cluster = _idle_cluster(n_nodes, mode, interval, seed)
    stats = cluster.fabric.stats
    prefix = "swim." if mode == "swim" else "fd.beat"
    count = (stats.count_prefix if mode == "swim" else stats.count)
    cluster.run(until=warm)
    before = count(prefix)
    cluster.run(until=cluster.now + window)
    load = ((count(prefix) - before)
            / n_nodes / (window / interval))

    victim = n_nodes - 1
    t_crash = cluster.now
    cluster.crash_node(victim)
    observers = [k for k in cluster.kernels.values()
                 if k.node_id != victim]
    deadline = t_crash + budget_periods * interval
    step = interval / 4.0

    suspect_lat: list[float] = []
    confirm_lat: list[float] = []
    if mode == "swim":
        while cluster.now < deadline:
            cluster.run(until=cluster.now + step)
            if all(k.membership.is_dead(victim) for k in observers):
                break
        for kernel in observers:
            first: dict[str, float] = {}
            for t, peer, state, _inc in kernel.membership.transitions:
                if peer == victim and t >= t_crash and state not in first:
                    first[state] = t
            if "suspect" in first:
                suspect_lat.append(first["suspect"] - t_crash)
            if "dead" in first:
                confirm_lat.append(first["dead"] - t_crash)
        detected = sum(1 for k in observers
                       if k.membership.is_dead(victim))
    else:
        seen: dict[int, float] = {}
        while cluster.now < deadline and len(seen) < len(observers):
            cluster.run(until=cluster.now + step)
            for kernel in observers:
                if (kernel.node_id not in seen
                        and kernel.failure.is_suspected(victim)):
                    seen[kernel.node_id] = cluster.now
        suspect_lat = [t - t_crash for t in seen.values()]
        detected = len(seen)

    assert detected == len(observers), (
        f"{mode} n={n_nodes}: only {detected}/{len(observers)} observers "
        f"detected the crash within {budget_periods} periods")
    return {
        "mode": mode, "nodes": n_nodes, "interval": interval,
        "msgs_per_node_per_period": load,
        "suspect_p50": statistics.median(suspect_lat),
        "suspect_max": max(suspect_lat),
        "confirm_p50": (statistics.median(confirm_lat)
                        if confirm_lat else None),
        "confirm_max": max(confirm_lat) if confirm_lat else None,
        "observers": len(observers),
    }


def run_convergence_row(n_nodes: int, fail_fraction: float = 0.1,
                        interval: float = 0.1, seed: int = 0,
                        warm: float = 2.0,
                        budget_periods: int = 80) -> dict:
    """Crash ``fail_fraction`` of the cluster in the same instant;
    measure how long until every survivor marks every victim dead."""
    cluster = _idle_cluster(n_nodes, "swim", interval, seed)
    cluster.run(until=warm)
    k = max(1, int(n_nodes * fail_fraction))
    victims = list(range(n_nodes - k, n_nodes))
    t_crash = cluster.now
    for node in victims:
        cluster.crash_node(node)
    survivors = [kernel for kernel in cluster.kernels.values()
                 if kernel.node_id not in victims]
    deadline = t_crash + budget_periods * interval
    step = interval / 2.0
    while cluster.now < deadline:
        cluster.run(until=cluster.now + step)
        if all(kernel.membership.is_dead(v)
               for kernel in survivors for v in victims):
            break
    converged = all(kernel.membership.is_dead(v)
                    for kernel in survivors for v in victims)
    assert converged, (
        f"n={n_nodes}: views did not converge on {k} correlated "
        f"failures within {budget_periods} periods")
    last = 0.0
    for kernel in survivors:
        for t, peer, state, _inc in kernel.membership.transitions:
            if peer in victims and state == "dead" and t >= t_crash:
                last = max(last, t - t_crash)
    return {
        "nodes": n_nodes, "failed": k, "interval": interval,
        "convergence_time": last,
        "convergence_periods": last / interval,
    }


# ----------------------------------------------------------------------
# churn invariant rows (chaos harness, single-process sim)
# ----------------------------------------------------------------------

def churn_spec(n_nodes: int, seed: int = 7,
               scheduler: str = "heap") -> ChaosSpec:
    """The acceptance churn scenario: drops plus scheduled leave/crash
    churn at ``n_nodes`` with SWIM membership on."""
    return ChaosSpec(
        seed=seed, n_nodes=n_nodes, posts=150, drop_rate=0.05,
        crash_period=None, swim_interval=0.05, scheduler=scheduler,
        churn=ChurnSpec(period=0.25, down_time=0.4,
                        max_down=max(2, n_nodes // 16)),
        settle=12.0)


def run_churn_row(n_nodes: int, seed: int = 7,
                  scheduler: str = "heap") -> dict:
    started = time.perf_counter()
    report = run_chaos(churn_spec(n_nodes, seed, scheduler))
    wall = time.perf_counter() - started
    assert not report.violations, (
        f"churn n={n_nodes}: {report.violations[:3]}")
    messages = report.message_stats.get("sent", 0)
    return {
        "nodes": n_nodes, "seed": seed, "scheduler": scheduler,
        "posts": report.spec.posts,
        "messages": messages,
        "wall": wall,
        "msgs_per_sec": messages / wall if wall else 0.0,
        "executed_once": report.executed_once,
        "noticed": len(report.notices),
        "accounted": report.accounted_rate,
        "churn_events": len(report.churn_events),
        "leaves": sum(1 for _t, _n, kind in report.churn_events
                      if kind == "leave"),
        "rejoins": report.membership.get("rejoins", 0),
        "refutations": report.membership.get("refutations", 0),
        "digest": report.digest,
    }


# ----------------------------------------------------------------------
# sharded churn scenario (multi-process transport)
# ----------------------------------------------------------------------

def _churn_schedule(args: dict, n_nodes: int) -> list[tuple[float, int, str]]:
    """The (time, node, kind) churn schedule, computed identically in
    every worker from the seeded stream. Down-state is tracked
    *statically* (a departure pins the node down for ``down_time``), so
    no worker needs runtime knowledge of remotely-owned nodes."""
    rng = random.Random(int(args["seed"]) ^ 0xC0FFEE)
    churn_nodes = list(range(n_nodes // 2, n_nodes))
    period = float(args["churn_period"])
    down_time = float(args["down_time"])
    leave_fraction = float(args["leave_fraction"])
    start, end = float(args["churn_start"]), float(args["churn_end"])
    up_at = dict.fromkeys(churn_nodes, 0.0)
    events: list[tuple[float, int, str]] = []
    t = start
    while t < end:
        node = rng.choice(churn_nodes)
        kind = "leave" if rng.random() < leave_fraction else "crash"
        if up_at[node] <= t:
            events.append((round(t, 9), node, kind))
            up_at[node] = t + down_time
        t += period
    return events


def churn_scenario(ctx) -> Callable[[], dict]:
    """Per-shard setup for the sharded churn run.

    The low half of the node range is *stable*: each stable node raises
    ``posts_per_node`` posts at uniformly-random stable sinks (the event
    plane under test). The high half *churns* on the shared schedule —
    graceful leaves and abrupt crashes, each rejoining ``down_time``
    later with a bumped incarnation. Every worker computes the identical
    schedule and applies the events for its own nodes; SWIM gossip is
    the only thing that carries the news across shards.
    """
    cluster = ctx.cluster
    args = ctx.args
    n_nodes = ctx.n_nodes
    stable = list(range(n_nodes // 2))
    interval = float(args["interval"])
    down_time = float(args["down_time"])
    cluster.register_event(MEMBER_EVENT)
    cluster.tracer.mute(*MUTED_CATEGORIES)
    sinks = {}
    for node in ctx.local_nodes:
        # one sink per local node in ascending order: sink_cap's oid
        # arithmetic needs the uniform layout even on churn nodes
        cap = cluster.create_object(ScaleSink, node=node)
        sinks[node] = cluster.get_object(cap)
    raised = {"n": 0}
    sim = cluster.sim

    def make_pump(node: int, targets: list[int],
                  phase: float) -> Callable[[int], None]:
        def pump(i: int) -> None:
            cap = sink_cap(n_nodes, ctx.shard_count, targets[i])
            cluster.raise_event(MEMBER_EVENT, cap, from_node=node,
                                user_data=(node, i))
            raised["n"] += 1
            if i + 1 < len(targets):
                sim.call_at(phase + (i + 1) * interval, pump, i + 1)
        return pump

    for node in ctx.local_nodes:
        if node not in stable:
            continue
        rng = random.Random(int(args["seed"]) * 100003 + node)
        targets = [rng.choice(stable)
                   for _ in range(int(args["posts_per_node"]))]
        phase = interval * (node + 1) / (n_nodes + 1)
        if targets:
            sim.call_at(phase, make_pump(node, targets, phase), 0)

    events = _churn_schedule(args, n_nodes)
    churned = {"departures": 0, "leaves": 0}

    def depart(node: int, kind: str) -> None:
        churned["departures"] += 1
        if kind == "leave":
            churned["leaves"] += 1
            cluster.leave_node(node)
        else:
            cluster.crash_node(node)
        sim.call_after(down_time, cluster.recover_node, node)

    for t, node, kind in events:
        if node in set(ctx.local_nodes):
            sim.call_at(t, depart, node, kind)

    def finish() -> dict:
        executed = sum(sinks[node].seen for node in ctx.local_nodes)
        views = {}
        converged = True
        for node in ctx.local_nodes:
            if node not in stable:
                continue
            view = cluster.kernels[node].membership.stats()
            views[node] = (view["view_alive"], view["view_suspect"],
                           view["view_dead"])
            if view["view_suspect"] or view["view_dead"]:
                converged = False
        material = repr((
            sorted((node, sinks[node].seen,
                    sorted(sinks[node].by_source.items()))
                   for node in ctx.local_nodes),
            sorted(views.items())))
        return {
            "raised": raised["n"],
            "executed": executed,
            "departures": churned["departures"],
            "leaves": churned["leaves"],
            "converged": converged,
            "views": sorted(views.items()),
            "membership": cluster.membership_stats(),
            "sha": hashlib.sha256(material.encode()).hexdigest(),
        }

    return finish


def run_churn_sharded(n_nodes: int, shard_count: int, seed: int = 7,
                      posts_per_node: int = 60,
                      interval: float = 0.05) -> dict:
    """The sharded churn row: stable-half posts under other-half churn."""
    from repro.transport.sharded import run_sharded
    args = {
        "seed": seed, "posts_per_node": posts_per_node,
        "interval": interval, "churn_period": 0.25, "down_time": 0.4,
        "leave_fraction": 0.5, "churn_start": 0.3, "churn_end": 2.3,
    }
    post_end = posts_per_node * interval + 0.1
    settle = 4.0
    until = max(post_end, args["churn_end"] + args["down_time"]) + settle
    config = ClusterConfig(
        n_nodes=n_nodes, seed=seed, transport="sharded",
        shard_count=shard_count, link_latency=5e-3,
        swim_interval=0.05, trace_net=False)
    started = time.perf_counter()
    report = run_sharded(config, "repro.bench.membership:churn_scenario",
                         scenario_args=args, until=until)
    wall = time.perf_counter() - started
    raised = sum(r["raised"] for r in report.shard_results)
    executed = sum(r["executed"] for r in report.shard_results)
    departures = sum(r["departures"] for r in report.shard_results)
    assert executed == raised, (
        f"sharded churn n={n_nodes}: lost posts ({executed}/{raised})")
    assert all(r["converged"] for r in report.shard_results), (
        f"sharded churn n={n_nodes}: stable views did not converge "
        f"after churn (suspects or deads remain)")
    assert departures > 0, "churn schedule produced no departures"
    digest = hashlib.sha256(
        repr([r["sha"] for r in report.shard_results]).encode()).hexdigest()
    return {
        "nodes": n_nodes, "shards": shard_count, "seed": seed,
        "raised": raised, "executed": executed,
        "departures": departures,
        "leaves": sum(r["leaves"] for r in report.shard_results),
        "converged": True,
        "cross_shard": report.cross_shard_messages,
        "windows": report.windows,
        "wall": wall,
        "digest": digest,
    }


# ----------------------------------------------------------------------
# the E16 sweep
# ----------------------------------------------------------------------

def check_scaling(rows: list[dict]) -> None:
    """The headline claim: SWIM's per-node load is flat while the
    heartbeat's grows with n."""
    swim = sorted((r for r in rows if r["mode"] == "swim"),
                  key=lambda r: r["nodes"])
    beat = sorted((r for r in rows if r["mode"] == "heartbeat"),
                  key=lambda r: r["nodes"])
    if len(swim) >= 2:
        lo, hi = swim[0], swim[-1]
        growth = (hi["msgs_per_node_per_period"]
                  / max(lo["msgs_per_node_per_period"], 1e-9))
        assert growth <= 3.0, (
            f"swim per-node load grew {growth:.2f}x from n={lo['nodes']} "
            f"to n={hi['nodes']} (expected O(1))")
    if len(beat) >= 2:
        lo, hi = beat[0], beat[-1]
        node_ratio = hi["nodes"] / lo["nodes"]
        growth = (hi["msgs_per_node_per_period"]
                  / max(lo["msgs_per_node_per_period"], 1e-9))
        assert growth >= node_ratio / 2.0, (
            f"heartbeat per-node load grew only {growth:.2f}x over a "
            f"{node_ratio:.0f}x node range (expected O(n))")


def run_e16(quick: bool = False, sharded: bool = True) -> tuple[Table, dict]:
    if quick:
        swim_nodes = (4, 16, 32)
        beat_nodes = (4, 16)
        converge_nodes = (32,)
        churn_nodes = (16,)
        sharded_rows = ((16, 2),)
    else:
        swim_nodes = (4, 16, 64, 128, 256)
        beat_nodes = (4, 16, 64)
        converge_nodes = (64,)
        churn_nodes = (64, 128)
        sharded_rows = ((64, 4), (128, 8))
    table = Table(
        title="E16: SWIM gossip membership vs all-pairs heartbeat",
        columns=["kind", "mode", "nodes", "shards", "msgs/node/period",
                 "suspect_p50", "confirm_max", "converge", "accounted",
                 "digest[:12]"])
    rows: dict[str, Any] = {"detection": [], "convergence": [],
                            "churn": [], "sharded": []}
    for mode, node_list in (("swim", swim_nodes),
                            ("heartbeat", beat_nodes)):
        for n in node_list:
            row = run_detection_row(n, mode)
            rows["detection"].append(row)
            table.add("detect", mode, n, 1,
                      round(row["msgs_per_node_per_period"], 2),
                      round(row["suspect_p50"], 3),
                      (round(row["confirm_max"], 3)
                       if row["confirm_max"] is not None else "-"),
                      "-", "-", "-")
    check_scaling(rows["detection"])
    for n in converge_nodes:
        row = run_convergence_row(n)
        rows["convergence"].append(row)
        table.add("converge-10%", "swim", n, 1, "-", "-", "-",
                  round(row["convergence_time"], 3), "-", "-")
    for n in churn_nodes:
        row = run_churn_row(n)
        rows["churn"].append(row)
        table.add("churn", "sim", n, 1, "-", "-", "-", "-",
                  round(row["accounted"], 4), row["digest"][:12])
    if sharded:
        for n, shards in sharded_rows:
            row = run_churn_sharded(n, shards)
            rows["sharded"].append(row)
            table.add("churn", "sharded", n, shards, "-", "-", "-",
                      "-", 1.0, row["digest"][:12])
    table.note("msgs/node/period: failure-detection sends only (swim.* "
               "vs fd.beat) over a 2s steady-state window")
    table.note("swim per-node load is O(1) vs heartbeat O(n); "
               "check_scaling asserts both slopes")
    table.note("churn accounted = every post executed exactly once, "
               "noticed, or quarantined under drops + leave/crash/rejoin")
    return table, rows


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(description="E16 membership bench")
    parser.add_argument("--quick", action="store_true")
    parser.add_argument("--no-sharded", action="store_true")
    parser.add_argument("--json", default="BENCH_membership.json")
    args = parser.parse_args(argv)
    table, rows = run_e16(quick=args.quick, sharded=not args.no_sharded)
    print(table.render())
    if args.json and args.json != "/dev/null":
        emit_json(table, args.json, experiment="e16-membership",
                  quick=args.quick, rows=rows)


if __name__ == "__main__":
    main()
