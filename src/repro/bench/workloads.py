"""Workload builders shared by the experiment suite.

Each builder assembles a cluster plus application objects/threads for one
experiment shape, so the experiment functions in
:mod:`repro.bench.experiments` stay declarative.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro import Cluster, ClusterConfig, Decision, DistObject, entry, on_event
from repro.apps.termination import install_ctrl_c
from repro.locks import LockManager


def build_cluster(**overrides: Any) -> Cluster:
    overrides.setdefault("trace_net", False)
    return Cluster(ClusterConfig(**overrides))


# ---------------------------------------------------------------------------
# migration workloads (E2)
# ---------------------------------------------------------------------------

class HopStation(DistObject):
    """A relay that carries a thread deeper into the cluster, then holds."""

    @entry
    def hop_and_hold(self, ctx, caps, hold):
        if caps:
            result = yield ctx.invoke(caps[0], "hop_and_hold", caps[1:],
                                      hold)
            return result
        yield ctx.sleep(hold)
        return "held"


def deep_thread(cluster: Cluster, depth: int, hold: float = 1e6):
    """Spawn a thread rooted at node 0 whose innermost frame sits
    ``depth`` migrations away; returns the thread once it settles."""
    n = cluster.config.n_nodes
    caps = [cluster.create_object(HopStation, node=(i % max(1, n - 1)) + 1)
            for i in range(depth)]
    thread = cluster.spawn(caps[0], "hop_and_hold", caps[1:], hold, at=0)
    cluster.run(until=cluster.now + max(1.0, depth * 0.01))
    return thread


class Bouncer(DistObject):
    """Carries a thread back and forth between two nodes forever —
    the adversarial target for hint-cached location (E2)."""

    @entry
    def bounce(self, ctx, other, dwell):
        while True:
            yield ctx.invoke(other, "dwell", dwell)
            yield ctx.sleep(dwell)

    @entry
    def dwell(self, ctx, seconds):
        yield ctx.sleep(seconds)
        return None


def bouncing_thread(cluster: Cluster, dwell: float = 0.05,
                    nodes: tuple[int, int] = (1, 2)):
    """Spawn a thread that keeps migrating between two nodes; returns it
    once the bouncing is underway."""
    a = cluster.create_object(Bouncer, node=nodes[0])
    b = cluster.create_object(Bouncer, node=nodes[1])
    thread = cluster.spawn(a, "bounce", b, dwell, at=0)
    cluster.run(until=cluster.now + dwell / 2)
    return thread


class EventSink(DistObject):
    """A thread body that absorbs user events cheaply."""

    @entry
    def absorb(self, ctx, event, hold):
        def on_event_(hctx, block):
            yield hctx.compute(1e-6)
            return Decision.RESUME

        yield ctx.attach_handler(event, on_event_)
        yield ctx.sleep(hold)
        return "done"


# ---------------------------------------------------------------------------
# object event storms (E3)
# ---------------------------------------------------------------------------

class StormTarget(DistObject):
    """Passive object absorbing a storm of user events."""

    def __init__(self):
        super().__init__()
        self.seen = 0

    @on_event("STORM")
    def on_storm(self, ctx, block):
        yield ctx.compute(1e-6)
        self.seen += 1
        return self.seen


def object_event_storm(mode: str, events: int, n_nodes: int = 2,
                       thread_create_cost: float = 2e-4) -> Cluster:
    """Raise ``events`` object events under the given execution mode."""
    cluster = build_cluster(n_nodes=n_nodes, object_event_mode=mode,
                            thread_create_cost=thread_create_cost)
    cluster.register_event("STORM")
    cap = cluster.create_object(StormTarget, node=1)
    for _ in range(events):
        cluster.raise_event("STORM", cap, from_node=0)
    cluster.run()
    assert cluster.get_object(cap).seen == events
    return cluster


# ---------------------------------------------------------------------------
# lock chains (E4)
# ---------------------------------------------------------------------------

class LockGrabber(DistObject):
    @entry
    def grab_and_hang(self, ctx, mgr, names):
        for name in names:
            yield ctx.invoke(mgr, "acquire", name)
        yield ctx.sleep(1e6)
        return "never"


@dataclass
class LockChainRig:
    cluster: Cluster
    manager_cap: Any
    thread: Any
    lock_names: list[str]


def lock_chain(locks: int, n_nodes: int = 4) -> LockChainRig:
    cluster = build_cluster(n_nodes=n_nodes)
    mgr = cluster.create_object(LockManager, node=n_nodes - 1)
    grabber = cluster.create_object(LockGrabber, node=1)
    names = [f"lock-{i}" for i in range(locks)]
    thread = cluster.spawn(grabber, "grab_and_hang", mgr, names, at=0)
    cluster.run(until=1.0)
    return LockChainRig(cluster=cluster, manager_cap=mgr, thread=thread,
                        lock_names=names)


# ---------------------------------------------------------------------------
# distributed ^C applications (E5)
# ---------------------------------------------------------------------------

class CtrlCWorkload(DistObject):
    def __init__(self):
        super().__init__()
        self.aborted_tids = []

    @on_event("ABORT")
    def on_abort(self, ctx, block):
        yield ctx.compute(1e-6)
        data = block.user_data or {}
        self.aborted_tids.append(str(data.get("tid")))

    @entry
    def main(self, ctx, worker_cap, mgr_cap, n_workers, use_locks):
        yield from install_ctrl_c(ctx)
        for i in range(n_workers):
            lock = f"lock-{i}" if use_locks else None
            yield ctx.invoke_async(worker_cap, "work", mgr_cap, lock,
                                   claimable=False)
        yield ctx.sleep(1e6)
        return "never"

    @entry
    def work(self, ctx, mgr_cap, lock_name):
        if lock_name is not None:
            yield ctx.invoke(mgr_cap, "acquire", lock_name)
        yield ctx.sleep(1e6)
        return "never"


@dataclass
class CtrlCRig:
    cluster: Cluster
    root: Any
    gid: Any
    manager_cap: Any
    root_obj: Any
    worker_obj: Any


def ctrl_c_app(workers: int, n_nodes: int = 8,
               use_locks: bool = True) -> CtrlCRig:
    cluster = build_cluster(n_nodes=n_nodes)
    mgr = cluster.create_object(LockManager, node=n_nodes - 1)
    root_obj = cluster.create_object(CtrlCWorkload, node=0)
    worker_obj = cluster.create_object(CtrlCWorkload, node=1)
    gid = cluster.new_group()
    root = cluster.spawn(root_obj, "main", worker_obj, mgr, workers,
                         use_locks, at=0, group=gid)
    cluster.run(until=2.0)
    return CtrlCRig(cluster=cluster, root=root, gid=gid, manager_cap=mgr,
                    root_obj=root_obj, worker_obj=worker_obj)


# ---------------------------------------------------------------------------
# transport-transparency workload (E7)
# ---------------------------------------------------------------------------

class SharedCounter(DistObject):
    """Transport-agnostic object: all state through ctx.read/ctx.write."""

    dsm_fields = {"total": 0}

    @entry
    def seed(self, ctx):
        yield ctx.write("total", 0)
        return True

    @entry
    def bump(self, ctx, trace, label, rounds):
        def on_mark(hctx, block):
            trace.append((label, "MARK", block.user_data))
            yield hctx.compute(1e-6)
            return Decision.RESUME

        yield ctx.attach_handler("MARK", on_mark)
        for _ in range(rounds):
            value = yield ctx.read("total")
            yield ctx.write("total", value + 1)
        yield ctx.sleep(0.5)
        result = yield ctx.read("total")
        trace.append((label, "DONE", result))
        return result


@dataclass
class TransportRun:
    transport: str
    per_thread_traces: dict[str, list]
    messages: dict[str, int]
    virtual_time: float
    final_total: int


def transport_workload(transport: str, workers: int = 3,
                       rounds: int = 5, n_nodes: int = 4) -> TransportRun:
    cluster = build_cluster(n_nodes=n_nodes)
    cluster.register_event("MARK")
    cap = cluster.create_object(SharedCounter, node=1, transport=transport)
    if transport == "rpc":
        cluster.get_object(cap).total = 0
    trace: list = []
    threads = []
    for i in range(workers):
        threads.append(cluster.spawn(cap, "bump", trace, f"w{i}", rounds,
                                     at=i % n_nodes))
    cluster.run(until=0.3)
    for i, thread in enumerate(threads):
        cluster.raise_event("MARK", thread.tid, from_node=0,
                            user_data=f"mark-{i}")
    cluster.run()
    per_thread: dict[str, list] = {}
    for label, kind, data in trace:
        per_thread.setdefault(label, []).append((kind, data))
    finals = [t.completion.result() for t in threads]
    return TransportRun(
        transport=transport, per_thread_traces=per_thread,
        messages=dict(cluster.fabric.stats.by_type),
        virtual_time=cluster.now, final_total=max(finals))
