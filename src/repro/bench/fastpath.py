"""Transport fast-path bench (E10): what coalesced/piggybacked acks,
per-peer retransmit timers, journal group-commit and scheduler heap
compaction buy, measured the paper's way — messages per post — plus the
simulator-level costs (heap events per post, wall-clock posts/sec).

Three workloads, each run with the fast path **on** (the defaults:
``ack_delay`` > 0, ``ack_piggyback``, ``journal_group_commit``) and
**off** (ack every arrival on a dedicated envelope, one journal commit
per record — the PR 2/PR 3 behaviour):

* ``burst`` — node 0 raises object events at node 1 in bursts of B. One
  cumulative ack retires the whole burst, so msgs/post drops from 2
  toward (B+1)/B.
* ``bidir`` — both nodes raise at each other, reverse posts offset into
  the ack window; pending acks ride the reverse data envelopes
  (``acks_piggybacked``) instead of dedicated ``rel.ack`` messages.
* ``durable-fanout`` — durable group-target posts; each fan-out journals
  its member records as one group commit, so journal commits/post falls
  by the group size while appends stay identical.

Delivery semantics are identical on and off — every row asserts the
exact execution counts — and everything deterministic is returned
separately from the wall-clock figures so same-seed runs can be compared
bit-for-bit. Results go to ``BENCH_fastpath.json``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any

from repro.bench.harness import Table
from repro.bench.workloads import EventSink, StormTarget, build_cluster

FAST_ON = {"ack_delay": 1e-3, "ack_piggyback": True,
           "journal_group_commit": True}
FAST_OFF = {"ack_delay": 0.0, "ack_piggyback": False,
            "journal_group_commit": False}


@dataclass
class FastpathSpec:
    """One E10 workload configuration (shared by the on/off rows)."""

    seed: int = 0
    posts: int = 400
    #: posts fired per burst instant; one coalescing window per burst
    burst: int = 4
    #: virtual seconds between bursts (must exceed the ack window)
    gap: float = 0.01
    link_latency: float = 1e-3
    #: members per durable fan-out group (the group-commit batch size)
    group_size: int = 3
    #: scheduler backend ("heap" | "wheel"); deterministic columns must
    #: not change with the backend — the differential tests assert it
    scheduler: str = "heap"


def _result(cluster, spec: FastpathSpec, posts: int,
            elapsed: float) -> dict[str, Any]:
    rel = cluster.reliability_stats()
    sent = cluster.fabric.stats.snapshot()["sent"]
    sim_events = cluster.sim.events_processed
    store = cluster.durability_stats()
    return {
        "posts": posts,
        "messages_sent": sent,
        "msgs_per_post": round(sent / posts, 4),
        "acks_sent": rel.get("acks_sent", 0),
        "acks_per_post": round(rel.get("acks_sent", 0) / posts, 4),
        "acks_piggybacked": rel.get("acks_piggybacked", 0),
        "acks_coalesced": rel.get("acks_coalesced", 0),
        "retransmits": rel.get("retransmits", 0),
        "sim_events_per_post": round(sim_events / posts, 2),
        "compactions": cluster.sim.compactions,
        "journal_appends": store.get("appends", 0),
        "journal_commits": store.get("commits", 0),
        "commits_per_post": round(store.get("commits", 0) / posts, 4),
        "outbox_pending": store.get("pending", 0),
        # wall-clock lives outside the deterministic comparison set
        "wall_posts_per_sec": round(posts / elapsed, 1) if elapsed else 0.0,
    }


def deterministic_view(result: dict[str, Any]) -> dict[str, Any]:
    """The same-seed-comparable subset (wall-clock stripped)."""
    return {k: v for k, v in result.items() if k != "wall_posts_per_sec"}


def run_burst(spec: FastpathSpec, fastpath: bool,
              bidirectional: bool = False) -> dict[str, Any]:
    """Burst-posting object events over the reliable channel.

    ``bidirectional`` adds a reverse stream offset into the ack window so
    pending acks have data envelopes to ride.
    """
    knobs = FAST_ON if fastpath else FAST_OFF
    cluster = build_cluster(n_nodes=2, seed=spec.seed,
                            link_latency=spec.link_latency,
                            scheduler=spec.scheduler,
                            reliable_delivery=True, **knobs)
    cluster.register_event("STORM")
    caps = {1: cluster.create_object(StormTarget, node=1)}
    if bidirectional:
        caps[0] = cluster.create_object(StormTarget, node=0)
    sim, t0 = cluster.sim, cluster.now

    def fire(from_node: int, dst: int, pid: int) -> None:
        cluster.events.raise_external("STORM", caps[dst],
                                      from_node=from_node, user_data=pid)

    # Reverse posts leave after the forward burst has arrived but before
    # its delayed ack fires: inside the piggyback window.
    offset = spec.link_latency + knobs["ack_delay"] / 2
    for pid in range(spec.posts):
        when = t0 + (pid // spec.burst) * spec.gap
        if bidirectional and pid % 2:
            sim.call_at(when + offset, fire, 1, 0, pid)
        else:
            sim.call_at(when, fire, 0, 1, pid)
    wall = time.perf_counter()
    cluster.run()
    elapsed = time.perf_counter() - wall

    forward = sum(1 for pid in range(spec.posts)
                  if not (bidirectional and pid % 2))
    assert cluster.get_object(caps[1]).seen == forward, \
        "fast path changed delivery: forward posts lost or duplicated"
    if bidirectional:
        assert cluster.get_object(caps[0]).seen == spec.posts - forward, \
            "fast path changed delivery: reverse posts lost or duplicated"
    return _result(cluster, spec, spec.posts, elapsed)


def run_durable_fanout(spec: FastpathSpec, fastpath: bool) -> dict[str, Any]:
    """Durable group-target posts: one journal commit per fan-out batch."""
    knobs = FAST_ON if fastpath else FAST_OFF
    n_nodes = spec.group_size + 1
    cluster = build_cluster(n_nodes=n_nodes, seed=spec.seed,
                            link_latency=spec.link_latency,
                            scheduler=spec.scheduler,
                            durable_delivery=True,
                            checkpoint_interval=None, **knobs)
    cluster.register_event("FAN")
    gid = cluster.new_group()
    sinks = [cluster.create_object(EventSink, node=node)
             for node in range(1, n_nodes)]
    for node, cap in enumerate(sinks, start=1):
        cluster.spawn(cap, "absorb", "FAN", 1e9, at=node, group=gid)
    cluster.run(until=cluster.now + 0.1)  # handlers attach

    posts = spec.posts // spec.burst  # each post fans out group_size ways
    sim, t0 = cluster.sim, cluster.now
    for pid in range(posts):
        sim.call_at(t0 + pid * spec.gap, cluster.events.raise_external,
                    "FAN", gid, 0, pid)
    wall = time.perf_counter()
    cluster.run(until=t0 + posts * spec.gap + 2.0)
    elapsed = time.perf_counter() - wall

    store = cluster.durability_stats()
    assert store["pending"] == 0, \
        f"outbox not drained: {store['pending']} durable posts pending"
    assert store["delivered"] == posts * spec.group_size, \
        "fast path changed delivery: fan-out member posts unresolved"
    return _result(cluster, spec, posts, elapsed)


WORKLOADS = ["burst", "bidir", "durable-fanout"]


def run_fastpath_sweep(
        spec: FastpathSpec | None = None,
        workloads: list[str] | None = None,
) -> tuple[Table, dict[str, dict[str, dict[str, Any]]]]:
    """Run every workload fast-path on and off; returns (table, results).

    ``results[workload]["on"|"off"]`` holds the raw counter dicts the
    smoke assertions and EXPERIMENTS.md numbers come from.
    """
    spec = spec or FastpathSpec()
    table = Table(
        title="Transport fast path: ack coalescing/piggyback + journal "
              f"group-commit ({spec.posts} posts, burst={spec.burst}, "
              f"group={spec.group_size})",
        columns=["workload", "fastpath", "posts", "msgs/post", "acks/post",
                 "piggybacked", "coalesced", "sim_ev/post", "commits/post",
                 "wall_posts/s"])
    runners = {
        "burst": lambda on: run_burst(spec, on),
        "bidir": lambda on: run_burst(spec, on, bidirectional=True),
        "durable-fanout": lambda on: run_durable_fanout(spec, on),
    }
    results: dict[str, dict[str, dict[str, Any]]] = {}
    for workload in workloads or WORKLOADS:
        results[workload] = {}
        for mode, on in (("on", True), ("off", False)):
            row = runners[workload](on)
            results[workload][mode] = row
            table.add(workload, mode, row["posts"], row["msgs_per_post"],
                      row["acks_per_post"], row["acks_piggybacked"],
                      row["acks_coalesced"], row["sim_events_per_post"],
                      row["commits_per_post"], row["wall_posts_per_sec"])
    table.note("fastpath=off: ack every arrival on a dedicated rel.ack "
               "envelope, one journal commit per record (PR 2/3 behaviour)")
    table.note("delivery semantics asserted identical on/off in every "
               "cell; wall_posts/s is host wall-clock, all other columns "
               "are deterministic")
    return table, results
