"""Per-node thread-control blocks and location-hint tables.

Each node's kernel keeps a :class:`ThreadTable` recording, for every
logical thread that currently has activations on the node, how many frames
reside here, whether the *innermost* frame (the one actually executing) is
here, and — crucially for the path-following locator of section 7.1 —
a forwarding pointer to the node the thread invoked into next.

The chain ``root → next_node → … → innermost`` is exactly the path the
paper describes walking "starting with the root node … using information
in the system's thread-control blocks".

The kernel also keeps a :class:`LocationHintTable`: a bounded LRU cache
of ``tid -> node`` *hints* recording where each thread was last observed.
Hints are best-effort (they may be stale the moment a thread migrates)
and are consumed by the ``cached`` locator, which posts directly to the
hinted node and chases TCB forwarding pointers on a miss.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field

from repro.errors import KernelError


@dataclass
class Tcb:
    """Control block for one logical thread on one node."""

    tid: object
    frames: int = 0
    innermost: bool = False
    next_node: int | None = None
    #: history of nodes this thread invoked into from here (diagnostics)
    departures: list[int] = field(default_factory=list)


class ThreadTable:
    """All TCBs resident on one node."""

    def __init__(self, node_id: int) -> None:
        self.node_id = node_id
        self._tcbs: dict[object, Tcb] = {}

    def __contains__(self, tid: object) -> bool:
        return tid in self._tcbs

    def get(self, tid: object) -> Tcb | None:
        return self._tcbs.get(tid)

    def tids(self) -> list[object]:
        return list(self._tcbs)

    def innermost_here(self, tid: object) -> bool:
        tcb = self._tcbs.get(tid)
        return tcb is not None and tcb.innermost

    # ------------------------------------------------------------------
    # lifecycle transitions, called by the invocation engine
    # ------------------------------------------------------------------

    def thread_arrived(self, tid: object) -> Tcb:
        """A frame of ``tid`` starts executing on this node (push)."""
        tcb = self._tcbs.setdefault(tid, Tcb(tid=tid))
        tcb.frames += 1
        tcb.innermost = True
        tcb.next_node = None
        return tcb

    def thread_departed(self, tid: object, to_node: int) -> Tcb:
        """The thread invoked from this node into ``to_node``."""
        tcb = self._require(tid)
        tcb.innermost = False
        tcb.next_node = to_node
        tcb.departures.append(to_node)
        return tcb

    def thread_returned_here(self, tid: object) -> Tcb:
        """A deeper remote invocation returned; this node is innermost again."""
        tcb = self._require(tid)
        tcb.innermost = True
        tcb.next_node = None
        return tcb

    def frame_popped(self, tid: object) -> Tcb | None:
        """A frame on this node completed (return or unwind).

        Removes the TCB once no frames remain. Returns the TCB if it still
        exists, else None.
        """
        tcb = self._require(tid)
        tcb.frames -= 1
        if tcb.frames <= 0:
            del self._tcbs[tid]
            return None
        return tcb

    def purge(self, tid: object) -> bool:
        """Remove all state for a (terminated) thread. True if present."""
        return self._tcbs.pop(tid, None) is not None

    def clear(self) -> None:
        """Forget every TCB (the node crashed; this state was volatile)."""
        self._tcbs.clear()

    def _require(self, tid: object) -> Tcb:
        tcb = self._tcbs.get(tid)
        if tcb is None:
            raise KernelError(
                f"node {self.node_id} has no TCB for thread {tid!r}")
        return tcb


class LocationHintTable:
    """Bounded LRU cache of ``tid -> node`` last-known-location hints.

    Installed by successful deliveries, locate replies and the migration
    hooks; consumed by the ``cached`` locator. A hint is advisory: a
    lookup that points at a node no longer holding the thread costs one
    wasted message, after which the chase falls back on TCB forwarding
    pointers and ultimately the configured base strategy.
    """

    def __init__(self, node_id: int, capacity: int = 1024) -> None:
        self.node_id = node_id
        self.capacity = capacity
        self._hints: OrderedDict[object, int] = OrderedDict()
        #: counters surfaced by :meth:`stats` for benchmarks/diagnostics
        self.hits = 0
        self.misses = 0
        self.installs = 0
        self.invalidations = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._hints)

    def __contains__(self, tid: object) -> bool:
        return tid in self._hints

    def get(self, tid: object) -> int | None:
        """Consume a hint (counts a hit or a miss, refreshes LRU order)."""
        node = self._hints.get(tid)
        if node is None:
            self.misses += 1
            return None
        self.hits += 1
        self._hints.move_to_end(tid)
        return node

    def peek(self, tid: object) -> int | None:
        """Read a hint without touching hit/miss counters or LRU order."""
        return self._hints.get(tid)

    def install(self, tid: object, node: int) -> None:
        """Record that ``tid`` was last observed executing on ``node``."""
        self.installs += 1
        if tid in self._hints:
            self._hints.move_to_end(tid)
        self._hints[tid] = node
        while len(self._hints) > self.capacity:
            self._hints.popitem(last=False)
            self.evictions += 1

    def invalidate(self, tid: object) -> bool:
        """Drop the hint for ``tid``. True if one was present."""
        if self._hints.pop(tid, None) is not None:
            self.invalidations += 1
            return True
        return False

    def clear(self) -> None:
        """Forget every hint (the node crashed; hints were volatile)."""
        self._hints.clear()

    def stats(self) -> dict[str, int]:
        return {
            "size": len(self._hints),
            "hits": self.hits,
            "misses": self.misses,
            "installs": self.installs,
            "invalidations": self.invalidations,
            "evictions": self.evictions,
        }
