"""Node kernels, cluster configuration and the cluster builder."""

from repro.kernel.config import (
    ClusterConfig,
    LOCATE_BROADCAST,
    LOCATE_CACHED,
    LOCATE_MULTICAST,
    LOCATE_PATH,
    OBJ_EVENTS_MASTER,
    OBJ_EVENTS_PER_EVENT,
    TRANSPORT_DSM,
    TRANSPORT_RPC,
)

__all__ = [
    "ClusterConfig",
    "LOCATE_BROADCAST",
    "LOCATE_CACHED",
    "LOCATE_MULTICAST",
    "LOCATE_PATH",
    "OBJ_EVENTS_MASTER",
    "OBJ_EVENTS_PER_EVENT",
    "TRANSPORT_DSM",
    "TRANSPORT_RPC",
]
