"""Cluster builder: the composition root of the simulated DO/CT system.

A :class:`Cluster` assembles the full stack — simulator, fabric, per-node
kernels, object managers, the invocation engine, the event manager and
the DSM manager — and offers the high-level API applications, tests and
benchmarks use: create objects, spawn threads, raise events, run virtual
time.
"""

from __future__ import annotations

import itertools
from typing import Any

from repro.errors import KernelError, UnknownThreadError
from repro.events.delivery import EventManager
from repro.events.names import seed_system_events
from repro.kernel.config import ClusterConfig
from repro.kernel.names import NameService
from repro.kernel.node import Node
from repro.net.fabric import Fabric
from repro.net.faults import FaultPlan
from repro.net.latency import FixedLatency, LatencyModel
from repro.objects.capability import Capability
from repro.objects.invocation import InvocationEngine
from repro.objects.manager import ObjectManager
from repro.dsm.manager import DsmManager
from repro.sim.primitives import SimFuture
from repro.sim.rng import RngRegistry
from repro.sim.trace import Tracer
from repro.transport.base import make_transport
from repro.store.journal import ClusterStore
from repro.threads.attributes import IoChannel, ThreadAttributes
from repro.threads.groups import GroupRegistry
from repro.threads.ids import GroupId, IdAllocator, ThreadId
from repro.threads.thread import DThread


class Cluster:
    """A simulated DO/CT cluster, ready to run applications.

    Example
    -------
    >>> from repro import Cluster, ClusterConfig
    >>> cluster = Cluster(ClusterConfig(n_nodes=2))
    """

    def __init__(self, config: ClusterConfig | None = None,
                 latency: LatencyModel | None = None,
                 faults: FaultPlan | None = None) -> None:
        self.config = config or ClusterConfig()
        #: the message medium (repro.transport): deterministic simulator,
        #: one shard of a multi-process simulation, or real TCP sockets
        self.transport = make_transport(self.config)
        #: the transport's clock; a Simulator on the sim backends, a
        #: wall-clock RealtimeScheduler on tcp — same scheduling surface
        self.sim = self.transport.scheduler
        self.rng = RngRegistry(self.config.seed)
        self.tracer = Tracer(self.sim)
        if not self.config.trace_net:
            self.tracer.mute("net")
        self.fabric = Fabric(
            self.transport,
            latency or FixedLatency(self.config.link_latency),
            faults=faults or FaultPlan(self.rng),
            tracer=self.tracer)
        self.names = NameService()
        seed_system_events(self.names)
        self.groups = GroupRegistry()
        #: all live logical threads, by tid
        self.live_threads: dict[ThreadId, DThread] = {}
        #: global oid -> object map (location transparency for lookups;
        #: message costs are charged by the engines, not by this map)
        self.object_directory: dict[int, Any] = {}
        #: per-cluster oid allocator (keeps runs bit-identical)
        self.oid_counter = itertools.count(1)
        #: per-node write-ahead journals — the simulated durable medium.
        #: Owned by the cluster (not the kernels) so Kernel.crash cannot
        #: reach it; created before the nodes, which attach their
        #: NodeStore to their journal at construction.
        self.store = ClusterStore()
        #: global node ids hosted by *this* Cluster instance — all of
        #: them on the single-process backends, one contiguous shard
        #: block inside a sharded worker
        self.local_node_ids = list(self.config.local_node_ids())
        self.nodes = [Node(self, i) for i in self.local_node_ids]
        self.kernels = {node.node_id: node.kernel for node in self.nodes}
        for node in self.nodes:
            node.kernel.id_allocator = IdAllocator(node.node_id)
            node.kernel.objects = ObjectManager(node.kernel)
        self.invoker = InvocationEngine(self)
        self.events = EventManager(self)
        self.dsm = DsmManager(self)
        for node in self.nodes:
            node.kernel.invoker = self.invoker
            node.kernel.events = self.events
            node.kernel.dsm = self.dsm
        # Failure detection (inert unless a knob is set; arming happens
        # after wiring so beats/pings can dispatch). SWIM membership
        # subsumes the heartbeat detector when both are enabled.
        for node in self.nodes:
            node.kernel.membership.start()
            node.kernel.failure.start()
        # Bring the medium up last: endpoints are all registered by now.
        # A no-op for the in-process simulator; binds listening sockets
        # for tcp and declares remote shard peers for sharded workers.
        self.transport.start()

    # ------------------------------------------------------------------
    # messaging
    # ------------------------------------------------------------------

    def transmit(self, message: Any, on_give_up: Any = None) -> None:
        """Send through the source node's kernel (reliable when enabled).

        Falls back to the raw fabric for sources that are not kernels
        (e.g. external raisers using a pseudo node id).
        """
        kernel = self.kernels.get(message.src)
        if kernel is not None:
            kernel.transmit(message, on_give_up)
        else:
            self.fabric.send(message)

    # ------------------------------------------------------------------
    # crash / recovery
    # ------------------------------------------------------------------

    def crash_node(self, node: int) -> None:
        """Fail-stop ``node`` (see :meth:`repro.kernel.node.Kernel.crash`)."""
        kernel = self.kernels.get(node)
        if kernel is None:
            raise KernelError(f"no node {node} in this cluster")
        kernel.crash()

    def recover_node(self, node: int) -> None:
        """Bring a crashed ``node`` back with empty volatile state."""
        kernel = self.kernels.get(node)
        if kernel is None:
            raise KernelError(f"no node {node} in this cluster")
        kernel.recover()

    def leave_node(self, node: int) -> None:
        """Graceful departure: announce death through gossip membership
        (a no-op without ``swim_interval``), then fail-stop. Views
        converge immediately instead of waiting out a suspicion cycle;
        :meth:`recover_node` later rejoins with a bumped incarnation."""
        kernel = self.kernels.get(node)
        if kernel is None:
            raise KernelError(f"no node {node} in this cluster")
        kernel.membership.leave()
        kernel.crash()

    def membership_stats(self) -> dict[str, int]:
        """Cluster-wide sums of the per-node SWIM membership counters."""
        totals: dict[str, int] = {}
        for kernel in self.kernels.values():
            for key, value in kernel.membership.stats().items():
                totals[key] = totals.get(key, 0) + value
        return totals

    def reliability_stats(self) -> dict[str, int]:
        """Cluster-wide sums of the per-node reliable-channel counters."""
        totals: dict[str, int] = {}
        for kernel in self.kernels.values():
            for key, value in kernel.reliable.stats().items():
                totals[key] = totals.get(key, 0) + value
        return totals

    def node_recovered(self, node: int) -> None:
        """A node finished recovery replay: surviving peers re-dispatch
        every outbox entry addressed to it (anything queued there at the
        crash died with the kernel's memory)."""
        for kernel in self.kernels.values():
            if kernel.node_id != node and not kernel.crashed:
                kernel.store.flush_to(node)

    def durability_stats(self) -> dict[str, int]:
        """Cluster-wide sums of the per-node store counters."""
        totals: dict[str, int] = {}
        for kernel in self.kernels.values():
            for key, value in kernel.store.stats().items():
                totals[key] = totals.get(key, 0) + value
        return totals

    # ------------------------------------------------------------------
    # handler supervision (dead letters, breakers, failure detection)
    # ------------------------------------------------------------------

    def dead_letters(self, node: int | None = None) -> list[Any]:
        """Quarantined event blocks: one node's, or the whole cluster's
        in (node, dl_id) order."""
        if node is not None:
            kernel = self.kernels.get(node)
            if kernel is None:
                raise KernelError(f"no node {node} in this cluster")
            return kernel.dead_letters.entries()
        out: list[Any] = []
        for node_id in sorted(self.kernels):
            out.extend(self.kernels[node_id].dead_letters.entries())
        return out

    def requeue_dead_letter(self, node: int, dl_id: int) -> bool:
        """Take a dead letter off ``node``'s quarantine and re-post it.

        The block is re-routed as a **fresh** asynchronous post (new
        block id, no durable id) so receiver-side dedup — which already
        saw the original — cannot swallow the retry. Returns False when
        the id is unknown.
        """
        kernel = self.kernels.get(node)
        if kernel is None:
            raise KernelError(f"no node {node} in this cluster")
        dead = kernel.dead_letters.take(dl_id)
        if dead is None:
            return False
        self.events.requeue(node, dead)
        return True

    def supervision_stats(self) -> dict[str, int]:
        """Supervisor counters plus cluster-wide detector / dead-letter
        sums and the admission gate's shed/defer/depth counters."""
        totals = dict(self.events.supervisor.stats())
        for kernel in self.kernels.values():
            for key, value in kernel.failure.stats().items():
                totals[key] = totals.get(key, 0) + value
            if kernel.membership.enabled:
                for key, value in kernel.membership.stats().items():
                    key = f"membership_{key}"
                    totals[key] = totals.get(key, 0) + value
            for key, value in kernel.dead_letters.stats().items():
                key = f"dead_letters_{key}"
                totals[key] = totals.get(key, 0) + value
        for key, value in self.events.admission_stats().items():
            totals[f"admission_{key}"] = totals.get(
                f"admission_{key}", 0) + value
        return totals

    def scheduler_stats(self) -> dict[str, Any]:
        """Scheduler internals (:meth:`repro.sim.scheduler.Simulator.stats`)
        in the same aggregate style as :meth:`supervision_stats`, so
        benches report queue pressure alongside their own counters."""
        return self.sim.stats()

    # ------------------------------------------------------------------
    # running virtual time
    # ------------------------------------------------------------------

    def run(self, until: float | None = None,
            max_events: int | None = 2_000_000) -> None:
        """Advance time until idle (or ``until``).

        Virtual time on the sim backends; wall-clock seconds since the
        cluster was built on the tcp backend (where "idle" means no
        pending timers and no frames in flight).
        """
        self.sim.run(until=until, max_events=max_events)

    def close(self) -> None:
        """Release transport resources (sockets, worker pipes).

        A no-op for the in-process simulator; tcp clusters should close
        when done or loopback sockets linger until interpreter exit.
        """
        self.transport.close()

    def transport_stats(self) -> dict[str, Any]:
        """Backend counters from the transport port (frames moved,
        bytes on the wire for tcp, cross-shard traffic for sharded)."""
        return self.transport.stats()

    @property
    def now(self) -> float:
        return self.sim.now

    # ------------------------------------------------------------------
    # objects
    # ------------------------------------------------------------------

    def create_object(self, cls: type, *args: Any, node: int = 0,
                      transport: str | None = None,
                      name: str | None = None, **kwargs: Any) -> Capability:
        """Create an object on ``node``; optionally bind it in the name
        service under ``name``."""
        kernel = self.kernels.get(node)
        if kernel is None:
            raise KernelError(f"no node {node} in this cluster")
        cap = kernel.objects.create(cls, *args, transport=transport,
                                    **kwargs)
        if name is not None:
            self.names.register(name, cap)
        return cap

    def find_object(self, oid: int) -> Any:
        return self.object_directory.get(oid)

    def get_object(self, cap: Capability | int) -> Any:
        """The live instance behind a capability (for test assertions)."""
        oid = cap.oid if isinstance(cap, Capability) else cap
        obj = self.object_directory.get(oid)
        if obj is None:
            raise KernelError(f"no object {oid}")
        return obj

    # ------------------------------------------------------------------
    # threads and groups
    # ------------------------------------------------------------------

    def new_group(self, root: int = 0) -> GroupId:
        gid = self.kernels[root].id_allocator.new_gid()
        self.groups.create(gid)
        return gid

    def spawn(self, cap: Capability, entry: str, *args: Any, at: int = 0,
              group: GroupId | None = None,
              io_channel: IoChannel | None = None,
              attributes: ThreadAttributes | None = None) -> DThread:
        """Start a new application thread rooted at node ``at``.

        The thread invokes ``cap.entry(*args)``; its completion future
        resolves with the entry's return value.
        """
        if attributes is None:
            attributes = ThreadAttributes(creator="user", group=group,
                                          io_channel=io_channel)
        elif group is not None:
            attributes.group = group
        thread = self.invoker.spawn_thread(at, cap, entry, args,
                                           attributes=attributes)
        if attributes.group is not None:
            self.groups.add(attributes.group, thread.tid)
        return thread

    def thread(self, tid: ThreadId) -> DThread:
        thread = self.live_threads.get(tid)
        if thread is None:
            raise UnknownThreadError(f"no live thread {tid}")
        return thread

    # ------------------------------------------------------------------
    # events (external raise, e.g. the user's terminal)
    # ------------------------------------------------------------------

    def raise_event(self, event: str, target: Any, from_node: int = 0,
                    user_data: Any = None) -> SimFuture[Any]:
        """Asynchronous external raise; future resolves with recipient
        count."""
        return self.events.raise_external(event, target, from_node,
                                          user_data, synchronous=False)

    def raise_and_wait(self, event: str, target: Any, from_node: int = 0,
                       user_data: Any = None) -> SimFuture[Any]:
        """Synchronous external raise; future resolves when a handler
        resumes the (virtual) raiser, with the handler's value."""
        return self.events.raise_external(event, target, from_node,
                                          user_data, synchronous=True)

    def register_event(self, name: str) -> None:
        """Register a user event name (§3) from outside any thread."""
        self.names.register_event(name, registrar="external")

    # ------------------------------------------------------------------
    # diagnostics
    # ------------------------------------------------------------------

    def message_stats(self) -> dict[str, int]:
        return self.fabric.stats.snapshot()

    def ps(self, kinds: tuple[str, ...] = ("user",)) -> list[dict]:
        """Snapshot of live threads (like `ps` on the simulated cluster).

        Each row: tid, kind, state, current node, group, call-stack
        summary (object class / entry per frame).
        """
        rows = []
        for tid in sorted(self.live_threads):
            thread = self.live_threads[tid]
            if kinds and thread.kind not in kinds:
                continue
            stack = [
                f"{type(f.obj).__name__ if f.obj is not None else '-'}"
                f".{f.entry}@{f.node}" for f in thread.frames]
            rows.append({
                "tid": str(tid),
                "kind": thread.kind,
                "state": thread.state,
                "node": thread.current_node,
                "group": str(thread.attributes.group)
                if thread.attributes.group else None,
                "stack": stack,
                "pending_events": len(thread.pending_notices),
            })
        return rows

    def quiescent(self) -> bool:
        """True when no simulation work is scheduled."""
        return self.sim.pending == 0
