"""SWIM-style gossip membership with suspicion and refutation.

Every node with ``swim_interval`` set runs the SWIM protocol
(Das/Gupta/Motivala): once per protocol period it pings **one** member
chosen by randomized round-robin, falling back to ``ping-req`` through
``swim_indirect_probes`` proxies when the direct ack misses the
``swim_ping_timeout``. A member that answers neither by the end of the
period is *suspected* and the suspicion is gossiped; unless the accused
node refutes it — by gossiping an ``alive`` update under a **higher
incarnation number** — within ``swim_suspect_timeout``, the suspicion is
confirmed and the member is declared *dead* cluster-wide. Updates spread
by piggybacking on existing outbound traffic (the ``Message.gossip``
field, stamped by the fabric's per-source hook) plus SWIM's own probes,
each update carrying an O(log n) retransmit budget — so failure
detection costs O(1) messages per node per period where the heartbeat
detector costs O(n), and dissemination still completes in O(log n)
periods with high probability.

Update ordering (the reason duplicates and stale retransmissions are
harmless):

- ``alive(inc)``  overrides anything with a **lower** incarnation —
  including ``dead``, which is how a recovered node re-enters views.
- ``suspect(inc)`` overrides ``alive(inc)`` of the *same* incarnation
  and anything lower.
- ``dead(inc)`` overrides ``alive``/``suspect`` of the same or lower
  incarnation and is never overridden except by a higher ``alive``.

Only the accused node may bump its own incarnation (it does so when it
hears itself suspected, and on every :meth:`Membership.rejoin`). The
incarnation counter survives :meth:`Kernel.crash` on this object — like
``ReliableChannel.next_seq`` — modelling the stable identity a real
implementation would persist; everything else here is volatile.

With ``swim_interval`` left at None (the default) the whole layer is
inert: no timers, no messages, no RNG streams, no state transitions —
same-seed digests are bit-identical to a build without it.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Callable

from repro.net.message import Message

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.kernel.node import Kernel

MSG_SWIM_PING = "swim.ping"
MSG_SWIM_ACK = "swim.ack"
MSG_SWIM_PING_REQ = "swim.ping-req"
MSG_SWIM_GOSSIP = "swim.gossip"

#: member states carried in updates (wire-stable small ints)
ALIVE = 0
SUSPECT = 1
DEAD = 2
STATE_NAMES = {ALIVE: "alive", SUSPECT: "suspect", DEAD: "dead"}


class Membership:
    """Per-node SWIM protocol instance and dynamic membership view.

    The view API consumers use:

    - :meth:`alive` / :meth:`is_alive` — members currently believed up
      (suspects excluded: they are *probably* failing).
    - :meth:`members` / :meth:`is_member` — everyone not confirmed
      dead. Locators target this set: a suspect may still hold the
      thread, only a confirmed-dead node is skipped.
    - :meth:`is_suspected` / :meth:`is_failed` / :meth:`is_dead` —
      suspicion is a *hint* (Chandra-Toueg unreliable detector), death
      is the protocol's settled verdict; both are still only local
      belief, never proof.
    """

    def __init__(self, kernel: "Kernel") -> None:
        self.kernel = kernel
        self.sim = kernel.sim
        #: my incarnation number; bumped only by me (refutation, rejoin)
        self.incarnation = 0
        #: peer node -> (state, incarnation); never contains me
        self._status: dict[int, tuple[int, int]] = {}
        #: dissemination queue: node -> (state, inc, remaining budget)
        self._updates: dict[int, tuple[int, int, int]] = {}
        #: suspected peer -> armed suspicion timer id
        self._suspect_timers: dict[int, int] = {}
        #: shuffled round-robin probe order (popped from the end)
        self._probe_queue: list[int] = []
        self._probe: tuple[int, int] | None = None
        self._probe_acked = False
        self._seq = 0
        self._timer: int | None = None
        self._rng = None
        self._gossip_budget = 1
        self._listeners: list[Callable[[], None]] = []
        #: (virtual time, peer, state name, incarnation) per local view
        #: transition — how the E16 bench measures detection latency
        self.transitions: list[tuple[float, int, str, int]] = []
        self.pings_sent = 0
        self.acks_sent = 0
        self.ping_reqs_sent = 0
        self.ping_reqs_relayed = 0
        self.gossip_sent = 0
        self.updates_piggybacked = 0
        self.updates_received = 0
        self.suspicions = 0
        self.confirms = 0
        self.refutations = 0
        self.resurrections = 0
        self.rejoins = 0
        self.leaves = 0

    @property
    def enabled(self) -> bool:
        return self.kernel.config.swim_interval is not None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def start(self) -> None:
        """Arm the protocol timer (cluster boot and node rejoin)."""
        if not self.enabled or self.kernel.crashed:
            return
        cfg = self.kernel.config
        me = self.kernel.node_id
        if self._rng is None:
            self._rng = self.kernel.cluster.rng.stream(f"swim.{me}")
        # Retransmit budget per update: lambda * log n spreads an update
        # cluster-wide with high probability (SWIM section 4.1).
        self._gossip_budget = max(
            1, 3 * (int(math.log2(max(2, cfg.n_nodes))) + 1))
        for node in range(cfg.n_nodes):
            if node != me:
                self._status.setdefault(node, (ALIVE, 0))
        if self._timer is None and cfg.n_nodes > 1:
            self._timer = self.kernel.timers.set(
                cfg.swim_interval, self._tick, recurring=True)
        if cfg.swim_piggyback:
            self.kernel.fabric.set_gossip_hook(me, self._piggyback)

    def on_crash(self) -> None:
        """Volatile protocol state dies with the node; the incarnation
        counter survives (the timer itself is cancelled by the kernel's
        ``timers.cancel_all``)."""
        self._timer = None
        self._status.clear()
        self._updates.clear()
        self._suspect_timers.clear()
        self._probe_queue.clear()
        self._probe = None
        self._probe_acked = False

    def rejoin(self) -> None:
        """Re-enter the cluster after :meth:`Kernel.recover`.

        The incarnation bump lets the join's ``alive`` update override
        any ``suspect``/``dead`` verdict peers settled on while we were
        down; the optimistic all-alive reset is corrected by the first
        few gossip exchanges.
        """
        if not self.enabled:
            return
        self.incarnation += 1
        self.rejoins += 1
        self.start()
        self._queue_update(self.kernel.node_id, ALIVE, self.incarnation)
        self._announce()
        self.kernel.tracer.emit("membership", "rejoin",
                                node=self.kernel.node_id,
                                incarnation=self.incarnation)

    def leave(self) -> None:
        """Graceful departure: tell a few peers we are dead *now*, so
        views converge without waiting out a suspicion cycle. Call just
        before :meth:`Kernel.crash`; rejoining later bumps the
        incarnation past this verdict."""
        if not self.enabled or self.kernel.crashed:
            return
        self.leaves += 1
        self._queue_update(self.kernel.node_id, DEAD, self.incarnation)
        self._announce()
        self.kernel.tracer.emit("membership", "leave",
                                node=self.kernel.node_id,
                                incarnation=self.incarnation)

    def _announce(self) -> None:
        """Push the queued self-update directly to a handful of alive
        peers (join and leave shouldn't wait for piggyback traffic)."""
        me = self.kernel.node_id
        state, inc, _budget = self._updates[me]
        update = ((me, state, inc),)
        peers = [n for n in sorted(self._status)
                 if self._status[n][0] == ALIVE]
        fanout = max(3, self.kernel.config.swim_indirect_probes)
        if len(peers) > fanout:
            peers = self._rng.sample(peers, fanout)
        for peer in peers:
            self.gossip_sent += 1
            self.kernel.send(peer, MSG_SWIM_GOSSIP, {"updates": update},
                             size=16)

    # ------------------------------------------------------------------
    # view API
    # ------------------------------------------------------------------

    def alive(self) -> list[int]:
        """Members currently believed up (me included, suspects out)."""
        out = [n for n, (state, _inc) in self._status.items()
               if state == ALIVE]
        if not self.kernel.crashed:
            out.append(self.kernel.node_id)
        return sorted(out)

    def members(self) -> list[int]:
        """Everyone not confirmed dead (me included)."""
        out = [n for n, (state, _inc) in self._status.items()
               if state != DEAD]
        if not self.kernel.crashed:
            out.append(self.kernel.node_id)
        return sorted(out)

    def is_alive(self, node: int) -> bool:
        if node == self.kernel.node_id:
            return not self.kernel.crashed
        state, _inc = self._status.get(node, (ALIVE, 0))
        return state == ALIVE

    def is_member(self, node: int) -> bool:
        if node == self.kernel.node_id:
            return not self.kernel.crashed
        state, _inc = self._status.get(node, (ALIVE, 0))
        return state != DEAD

    def is_suspected(self, node: int) -> bool:
        state, _inc = self._status.get(node, (ALIVE, 0))
        return state == SUSPECT

    def is_dead(self, node: int) -> bool:
        state, _inc = self._status.get(node, (ALIVE, 0))
        return state == DEAD

    def is_failed(self, node: int) -> bool:
        """Suspected or confirmed dead — the failure-detector hint the
        buddy retry and outbox flush gate consult."""
        state, _inc = self._status.get(node, (ALIVE, 0))
        return state != ALIVE

    def add_view_listener(self, fn: Callable[[], None]) -> None:
        """Call ``fn`` whenever the member set (non-dead) changes."""
        self._listeners.append(fn)

    # ------------------------------------------------------------------
    # protocol period
    # ------------------------------------------------------------------

    def _tick(self) -> None:
        if self.kernel.crashed:
            return
        # Settle the previous round first: neither the direct ack nor
        # any proxied ack arrived within a full period -> suspect.
        if self._probe is not None and not self._probe_acked:
            target, _seq = self._probe
            state, inc = self._status.get(target, (ALIVE, 0))
            if state == ALIVE:
                self._apply(target, SUSPECT, inc)
        self._probe = None
        target = self._next_target()
        if target is None:
            return
        self._seq += 1
        self._probe = (target, self._seq)
        self._probe_acked = False
        self.pings_sent += 1
        self.kernel.send(target, MSG_SWIM_PING,
                         {"seq": self._seq, "origin": self.kernel.node_id,
                          "target": target}, size=16)
        self.sim.call_after(
            self.kernel.config.effective_swim_ping_timeout(),
            self._ping_timeout, target, self._seq)

    def _next_target(self) -> int | None:
        """Randomized round-robin: shuffle the member list, probe it to
        exhaustion, reshuffle — every member is probed within 2n - 1
        periods of joining the queue (SWIM's time-bounded completeness),
        with no fixed order for an adversary or correlated failure to
        exploit."""
        while True:
            while self._probe_queue:
                node = self._probe_queue.pop()
                state, _inc = self._status.get(node, (DEAD, 0))
                if state != DEAD:
                    return node
            members = [n for n in sorted(self._status)
                       if self._status[n][0] != DEAD]
            if not members:
                return None
            self._rng.shuffle(members)
            self._probe_queue = members

    def _ping_timeout(self, target: int, seq: int) -> None:
        """Direct ack missed: ask k alive proxies to ping on our behalf
        (disambiguates a dead target from a lossy/slow direct link)."""
        if (self.kernel.crashed or self._probe != (target, seq)
                or self._probe_acked):
            return
        k = self.kernel.config.swim_indirect_probes
        if k <= 0:
            return
        candidates = [n for n in sorted(self._status)
                      if self._status[n][0] == ALIVE and n != target]
        proxies = (self._rng.sample(candidates, k)
                   if len(candidates) > k else candidates)
        for proxy in proxies:
            self.ping_reqs_sent += 1
            self.kernel.send(proxy, MSG_SWIM_PING_REQ,
                             {"seq": seq, "origin": self.kernel.node_id,
                              "target": target}, size=24)

    # ------------------------------------------------------------------
    # message handlers (kernel dispatch entries)
    # ------------------------------------------------------------------

    def on_ping(self, message: Message) -> None:
        self.acks_sent += 1
        self.kernel.send(message.src, MSG_SWIM_ACK,
                         dict(message.payload), size=16)

    def on_ping_req(self, message: Message) -> None:
        payload = message.payload
        self.ping_reqs_relayed += 1
        self.kernel.send(payload["target"], MSG_SWIM_PING,
                         dict(payload), size=16)

    def on_ack(self, message: Message) -> None:
        payload = message.payload
        if payload["origin"] == self.kernel.node_id:
            if (self._probe == (payload["target"], payload["seq"])
                    and not self._probe_acked):
                self._probe_acked = True
        else:
            # We proxied this probe; relay the evidence to its origin.
            self.kernel.send(payload["origin"], MSG_SWIM_ACK,
                             dict(payload), size=16)

    def on_gossip_msg(self, message: Message) -> None:
        """Dedicated gossip carrier (joins/leaves and piggyback-off
        dissemination); the updates themselves may ride either the
        payload or the envelope's gossip field."""
        payload = message.payload
        if payload and payload.get("updates"):
            self.on_gossip(payload["updates"], message.src)

    def on_gossip(self, updates: tuple, src: int) -> None:
        """Apply piggybacked updates (called for every arriving envelope
        that carries them, before dispatch — duplicates included, which
        incarnation ordering makes idempotent)."""
        if not self.enabled or self.kernel.crashed:
            return
        refuted = False
        for node, state, inc in updates:
            self.updates_received += 1
            if self._apply(node, state, inc) and node == self.kernel.node_id:
                refuted = True
        if refuted and src >= 0:
            # Answer the accuser directly: the refutation must outrun
            # the suspicion timer even when piggyback traffic is thin.
            self.gossip_sent += 1
            self.kernel.send(
                src, MSG_SWIM_GOSSIP,
                {"updates": ((self.kernel.node_id, ALIVE,
                              self.incarnation),)}, size=16)

    # ------------------------------------------------------------------
    # update core
    # ------------------------------------------------------------------

    @staticmethod
    def _supersedes(state: int, inc: int, cur_state: int,
                    cur_inc: int) -> bool:
        if state == ALIVE:
            return inc > cur_inc
        if state == SUSPECT:
            return inc > cur_inc or (inc == cur_inc and cur_state == ALIVE)
        # DEAD: final for its incarnation; only a higher alive revives.
        return cur_state != DEAD and inc >= cur_inc

    def _apply(self, node: int, state: int, inc: int) -> bool:
        """Merge one update into the local view. Returns True when it
        changed something (for me: when it triggered a refutation)."""
        me = self.kernel.node_id
        if node == me:
            # Someone thinks I'm failing. I am demonstrably not: bump my
            # incarnation and gossip the refutation (only I may do this).
            if state != ALIVE and inc >= self.incarnation:
                self.incarnation = inc + 1
                self.refutations += 1
                self._queue_update(me, ALIVE, self.incarnation)
                self.kernel.tracer.emit("membership", "refute", node=me,
                                        incarnation=self.incarnation)
                return True
            return False
        cur_state, cur_inc = self._status.get(node, (ALIVE, 0))
        if not self._supersedes(state, inc, cur_state, cur_inc):
            return False
        self._status[node] = (state, inc)
        self._queue_update(node, state, inc)
        if state == SUSPECT:
            self.suspicions += 1
            self._arm_suspect_timer(node)
        else:
            timer_id = self._suspect_timers.pop(node, None)
            if timer_id is not None:
                self.kernel.timers.cancel(timer_id)
            if state == DEAD:
                self.confirms += 1
            elif cur_state == DEAD:
                self.resurrections += 1
        self.transitions.append(
            (self.sim.now, node, STATE_NAMES[state], inc))
        self.kernel.tracer.emit("membership", STATE_NAMES[state], node=me,
                                peer=node, incarnation=inc)
        if (cur_state == DEAD) != (state == DEAD):
            for fn in self._listeners:
                fn()
        return True

    def _arm_suspect_timer(self, node: int) -> None:
        if node in self._suspect_timers:
            return
        self._suspect_timers[node] = self.kernel.timers.set(
            self.kernel.config.effective_swim_suspect_timeout(),
            self._suspect_expired, node)

    def _suspect_expired(self, node: int) -> None:
        self._suspect_timers.pop(node, None)
        if self.kernel.crashed:
            return
        state, inc = self._status.get(node, (ALIVE, 0))
        if state == SUSPECT:
            # No refutation inside the window: the suspicion stands.
            self._apply(node, DEAD, inc)

    def _queue_update(self, node: int, state: int, inc: int) -> None:
        self._updates[node] = (state, inc, self._gossip_budget)

    # ------------------------------------------------------------------
    # piggyback dissemination
    # ------------------------------------------------------------------

    def _piggyback(self, dst: int) -> tuple | None:
        """Fabric per-source hook: updates to ride an outbound envelope.

        Freshest (highest remaining budget) first, node id as the
        deterministic tie-break; each transmission spends one unit of
        the update's budget and a spent update leaves the queue.
        """
        if (dst == self.kernel.node_id or self.kernel.crashed
                or not self._updates):
            return None
        limit = self.kernel.config.swim_gossip_max
        picked = sorted(self._updates.items(),
                        key=lambda kv: (-kv[1][2], kv[0]))[:limit]
        out = []
        for node, (state, inc, budget) in picked:
            out.append((node, state, inc))
            if budget <= 1:
                del self._updates[node]
            else:
                self._updates[node] = (state, inc, budget - 1)
        self.updates_piggybacked += len(out)
        return tuple(out)

    # ------------------------------------------------------------------
    # diagnostics
    # ------------------------------------------------------------------

    def stats(self) -> dict[str, int]:
        states = [state for state, _inc in self._status.values()]
        return {
            "pings_sent": self.pings_sent,
            "acks_sent": self.acks_sent,
            "ping_reqs_sent": self.ping_reqs_sent,
            "ping_reqs_relayed": self.ping_reqs_relayed,
            "gossip_sent": self.gossip_sent,
            "updates_piggybacked": self.updates_piggybacked,
            "updates_received": self.updates_received,
            "suspicions": self.suspicions,
            "confirms": self.confirms,
            "refutations": self.refutations,
            "resurrections": self.resurrections,
            "rejoins": self.rejoins,
            "leaves": self.leaves,
            "view_alive": states.count(ALIVE),
            "view_suspect": states.count(SUSPECT),
            "view_dead": states.count(DEAD),
        }
