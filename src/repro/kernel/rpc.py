"""Request/reply engine between node kernels.

Kernel subsystems (locators, the DSM protocol, TCB cleanup, …) talk to
their peers on other nodes with a classic correlated request/reply
exchange on top of the fabric. ``request()`` returns a
:class:`~repro.sim.primitives.SimFuture` resolved with the peer's answer;
services are plain callables registered per service name and may answer
immediately or asynchronously by returning a future themselves.

Robustness: every call records its destination, so a node crash can fail
the calls targeting it immediately (:meth:`RpcEngine.fail_calls_to`)
instead of leaking parked futures. Calls without an explicit timeout
inherit ``config.rpc_default_timeout``, and idempotent services can opt
into ``retries`` — the same call id is re-issued after each timeout, so a
late reply to any attempt resolves the one future and stragglers are
ignored as duplicates.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable

from repro.errors import RpcError, RpcTimeout
from repro.net.fabric import Fabric
from repro.net.message import Message
from repro.sim.primitives import SimFuture
from repro.sim.scheduler import Simulator

MSG_REQUEST = "rpc.request"
MSG_REPLY = "rpc.reply"

ServiceFn = Callable[[Any, Message], Any]


class _RemoteFailure:
    """Wire representation of a service exception."""

    __slots__ = ("error",)

    def __init__(self, error: BaseException) -> None:
        self.error = error


class SizedReply:
    """Wrap a service result to control the reply message's wire size.

    Used by bulk services (DSM page grants) so bandwidth-aware latency
    models charge for the payload, not a 64-byte control message.
    """

    __slots__ = ("value", "size")

    def __init__(self, value: Any, size: int) -> None:
        self.value = value
        self.size = int(size)


class _Call:
    """Sender-side record of one outstanding request."""

    __slots__ = ("fut", "dst", "service", "envelope", "timeout",
                 "retries_left", "attempts")

    def __init__(self, fut: SimFuture[Any], dst: int, service: str,
                 envelope: Message, timeout: float | None,
                 retries_left: int) -> None:
        self.fut = fut
        self.dst = dst
        self.service = service
        self.envelope = envelope
        self.timeout = timeout
        self.retries_left = retries_left
        self.attempts = 1


class RpcEngine:
    """Per-node request/reply endpoint.

    One engine lives in each kernel; all engines share the fabric. The
    engine owns the two message types above — the kernel routes them here.
    The owning kernel assigns itself to :attr:`kernel` after construction
    so requests can flow through its (possibly reliable) transmit path
    and pick up config defaults.
    """

    def __init__(self, sim: Simulator, fabric: Fabric, node_id: int) -> None:
        self.sim = sim
        self.fabric = fabric
        self.node_id = node_id
        self.kernel: Any = None  # set by Kernel.__init__
        self._services: dict[str, ServiceFn] = {}
        self._outstanding: dict[int, _Call] = {}
        self._call_ids = itertools.count(1)
        self.timeouts = 0
        self.retries_sent = 0
        self.failed_by_crash = 0

    def serve(self, service: str, fn: ServiceFn) -> None:
        """Register the handler for ``service`` on this node."""
        if service in self._services:
            raise RpcError(f"service {service!r} already registered "
                           f"on node {self.node_id}")
        self._services[service] = fn

    @property
    def outstanding(self) -> int:
        """Number of calls still awaiting a reply (leak diagnostics)."""
        return len(self._outstanding)

    def request(self, dst: int, service: str, payload: Any = None,
                size: int = 64, timeout: float | None = None,
                retries: int | None = None) -> SimFuture[Any]:
        """Send a request; the returned future resolves with the reply.

        A service exception on the peer fails the future with that
        exception. ``timeout`` (virtual seconds) fails it with
        :class:`RpcTimeout` — used by locators to detect dead threads.
        When omitted, ``config.rpc_default_timeout`` applies. ``retries``
        re-issues the request that many times after timeouts before
        failing; only safe for idempotent services. Defaults to
        ``config.rpc_retries``.
        """
        config = self.kernel.config if self.kernel is not None else None
        if timeout is None and config is not None:
            timeout = config.rpc_default_timeout
        if retries is None:
            retries = config.rpc_retries if config is not None else 0
        call_id = next(self._call_ids)
        fut: SimFuture[Any] = SimFuture(self.sim)
        envelope = Message(
            src=self.node_id, dst=dst, mtype=MSG_REQUEST, size=size,
            payload={"call_id": call_id, "service": service,
                     "payload": payload, "reply_to": self.node_id})
        # retries without a timeout would never fire
        call = _Call(fut, dst, service, envelope, timeout,
                     retries if timeout is not None else 0)
        self._outstanding[call_id] = call
        self._send(envelope)
        if timeout is not None:
            self.sim.call_after(timeout, self._expire, call_id, call.attempts)
        return fut

    def _send(self, envelope: Message) -> None:
        if self.kernel is not None:
            self.kernel.transmit(envelope)
        else:
            self.fabric.send(envelope)

    def _expire(self, call_id: int, attempt: int) -> None:
        call = self._outstanding.get(call_id)
        if call is None or call.attempts != attempt:
            return  # answered, failed, or superseded by a newer attempt
        if call.retries_left > 0:
            call.retries_left -= 1
            call.attempts += 1
            self.retries_sent += 1
            # Fresh envelope: a retry is a new wire message (new rel seq),
            # but the same call_id, so any attempt's reply settles it.
            retry = Message(src=call.envelope.src, dst=call.envelope.dst,
                            mtype=call.envelope.mtype,
                            payload=call.envelope.payload,
                            size=call.envelope.size)
            call.envelope = retry
            self._send(retry)
            self.sim.call_after(call.timeout, self._expire, call_id,
                                call.attempts)
            return
        del self._outstanding[call_id]
        self.timeouts += 1
        if not call.fut.done:
            call.fut.fail(RpcTimeout(
                f"{call.service} to node {call.dst} timed out "
                f"after {call.timeout}s"))

    # ------------------------------------------------------------------
    # crash handling
    # ------------------------------------------------------------------

    def fail_calls_to(self, dst: int, error: BaseException) -> int:
        """Fail every outstanding call targeting ``dst`` (it crashed)."""
        doomed = [cid for cid, call in self._outstanding.items()
                  if call.dst == dst]
        for cid in doomed:
            call = self._outstanding.pop(cid)
            self.failed_by_crash += 1
            if not call.fut.done:
                call.fut.fail(error)
        return len(doomed)

    def fail_all(self, error: BaseException) -> int:
        """Fail every outstanding call (this node crashed)."""
        doomed = list(self._outstanding.values())
        self._outstanding.clear()
        for call in doomed:
            self.failed_by_crash += 1
            if not call.fut.done:
                call.fut.fail(error)
        return len(doomed)

    # ------------------------------------------------------------------
    # message entry points (wired by the kernel's dispatch table)
    # ------------------------------------------------------------------

    def on_request(self, message: Message) -> None:
        body = message.payload
        service = body["service"]
        fn = self._services.get(service)
        if fn is None:
            self._reply(body, _RemoteFailure(
                RpcError(f"node {self.node_id} has no service {service!r}")))
            return
        try:
            result = fn(body["payload"], message)
        except BaseException as exc:  # noqa: BLE001 - shipped to caller
            self._reply(body, _RemoteFailure(exc))
            return
        if isinstance(result, SimFuture):
            result.add_done_callback(
                lambda fut: self._reply_from_future(body, fut))
        else:
            self._reply(body, result)

    def _reply_from_future(self, body: dict, fut: SimFuture[Any]) -> None:
        try:
            self._reply(body, fut.result())
        except BaseException as exc:  # noqa: BLE001
            self._reply(body, _RemoteFailure(exc))

    def _reply(self, body: dict, result: Any) -> None:
        size = 64
        if isinstance(result, SizedReply):
            size = result.size
            result = result.value
        self._send(Message(
            src=self.node_id, dst=body["reply_to"], mtype=MSG_REPLY,
            size=size,
            payload={"call_id": body["call_id"], "result": result}))

    def on_reply(self, message: Message) -> None:
        body = message.payload
        call = self._outstanding.pop(body["call_id"], None)
        if call is None or call.fut.done:
            return  # duplicate or post-timeout reply
        result = body["result"]
        if isinstance(result, _RemoteFailure):
            call.fut.fail(result.error)
        else:
            call.fut.resolve(result)
