"""Request/reply engine between node kernels.

Kernel subsystems (locators, the DSM protocol, TCB cleanup, …) talk to
their peers on other nodes with a classic correlated request/reply
exchange on top of the fabric. ``request()`` returns a
:class:`~repro.sim.primitives.SimFuture` resolved with the peer's answer;
services are plain callables registered per service name and may answer
immediately or asynchronously by returning a future themselves.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable

from repro.errors import RpcError, RpcTimeout
from repro.net.fabric import Fabric
from repro.net.message import Message
from repro.sim.primitives import SimFuture
from repro.sim.scheduler import Simulator

MSG_REQUEST = "rpc.request"
MSG_REPLY = "rpc.reply"

ServiceFn = Callable[[Any, Message], Any]


class _RemoteFailure:
    """Wire representation of a service exception."""

    __slots__ = ("error",)

    def __init__(self, error: BaseException) -> None:
        self.error = error


class SizedReply:
    """Wrap a service result to control the reply message's wire size.

    Used by bulk services (DSM page grants) so bandwidth-aware latency
    models charge for the payload, not a 64-byte control message.
    """

    __slots__ = ("value", "size")

    def __init__(self, value: Any, size: int) -> None:
        self.value = value
        self.size = int(size)


class RpcEngine:
    """Per-node request/reply endpoint.

    One engine lives in each kernel; all engines share the fabric. The
    engine owns the two message types above — the kernel routes them here.
    """

    def __init__(self, sim: Simulator, fabric: Fabric, node_id: int) -> None:
        self.sim = sim
        self.fabric = fabric
        self.node_id = node_id
        self._services: dict[str, ServiceFn] = {}
        self._outstanding: dict[int, SimFuture[Any]] = {}
        self._call_ids = itertools.count(1)

    def serve(self, service: str, fn: ServiceFn) -> None:
        """Register the handler for ``service`` on this node."""
        if service in self._services:
            raise RpcError(f"service {service!r} already registered "
                           f"on node {self.node_id}")
        self._services[service] = fn

    def request(self, dst: int, service: str, payload: Any = None,
                size: int = 64, timeout: float | None = None) -> SimFuture[Any]:
        """Send a request; the returned future resolves with the reply.

        A service exception on the peer fails the future with that
        exception. ``timeout`` (virtual seconds) fails it with
        :class:`RpcTimeout` — used by locators to detect dead threads.
        """
        call_id = next(self._call_ids)
        fut: SimFuture[Any] = SimFuture(self.sim)
        self._outstanding[call_id] = fut
        self.fabric.send(Message(
            src=self.node_id, dst=dst, mtype=MSG_REQUEST, size=size,
            payload={"call_id": call_id, "service": service,
                     "payload": payload, "reply_to": self.node_id}))
        if timeout is not None:
            def expire() -> None:
                pending = self._outstanding.pop(call_id, None)
                if pending is not None and not pending.done:
                    pending.fail(RpcTimeout(
                        f"{service} to node {dst} timed out after {timeout}s"))
            self.sim.call_after(timeout, expire)
        return fut

    # ------------------------------------------------------------------
    # message entry points (wired by the kernel's dispatch table)
    # ------------------------------------------------------------------

    def on_request(self, message: Message) -> None:
        body = message.payload
        service = body["service"]
        fn = self._services.get(service)
        if fn is None:
            self._reply(body, _RemoteFailure(
                RpcError(f"node {self.node_id} has no service {service!r}")))
            return
        try:
            result = fn(body["payload"], message)
        except BaseException as exc:  # noqa: BLE001 - shipped to caller
            self._reply(body, _RemoteFailure(exc))
            return
        if isinstance(result, SimFuture):
            result.add_done_callback(
                lambda fut: self._reply_from_future(body, fut))
        else:
            self._reply(body, result)

    def _reply_from_future(self, body: dict, fut: SimFuture[Any]) -> None:
        try:
            self._reply(body, fut.result())
        except BaseException as exc:  # noqa: BLE001
            self._reply(body, _RemoteFailure(exc))

    def _reply(self, body: dict, result: Any) -> None:
        size = 64
        if isinstance(result, SizedReply):
            size = result.size
            result = result.value
        self.fabric.send(Message(
            src=self.node_id, dst=body["reply_to"], mtype=MSG_REPLY,
            size=size,
            payload={"call_id": body["call_id"], "result": result}))

    def on_reply(self, message: Message) -> None:
        body = message.payload
        fut = self._outstanding.pop(body["call_id"], None)
        if fut is None or fut.done:
            return  # duplicate or post-timeout reply
        result = body["result"]
        if isinstance(result, _RemoteFailure):
            fut.fail(result.error)
        else:
            fut.resolve(result)
