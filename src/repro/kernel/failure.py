"""Heartbeat failure detector.

Every node with ``heartbeat_interval`` set runs a recurring timer that
sends a tiny fire-and-forget ``fd.beat`` to every peer and checks how
long each peer has been silent. A peer silent for ``suspect_after``
consecutive intervals is *suspected*; the delivery engine uses suspicion
to fail buddy-handler invocations fast
(:class:`~repro.errors.BuddyUnavailableError`, feeding the retry/breaker
policy) instead of waiting out the reliable channel's full
retransmission give-up. A beat from a suspected peer clears the
suspicion — the detector is unreliable in the Chandra-Toueg sense, and
every consumer treats suspicion as a hint, never as proof of death.

With ``heartbeat_interval`` left at None (the default) the detector is
completely inert: no timers, no messages, no state.

When SWIM membership is enabled (``swim_interval``), the all-pairs
heartbeat machinery is subsumed: no beat timer is armed regardless of
``heartbeat_interval``, and :meth:`FailureDetector.is_suspected` /
:meth:`FailureDetector.suspected` become a thin adapter over
:class:`~repro.kernel.membership.Membership` suspicion — so every
existing consumer (buddy fast-fail, outbox flush gating) switches to
the O(1)-per-period gossip detector without changing a line.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.net.message import Message

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.kernel.node import Kernel

MSG_HEARTBEAT = "fd.beat"


class FailureDetector:
    """Per-node heartbeat sender / suspicion tracker."""

    def __init__(self, kernel: "Kernel") -> None:
        self.kernel = kernel
        self.sim = kernel.sim
        self._last_heard: dict[int, float] = {}
        self._suspected: set[int] = set()
        self._timer: int | None = None
        #: peer list computed once at start (it never changes between
        #: view changes, and rebuilding it every tick was O(n) garbage
        #: per beat); invalidated by membership view-change callbacks.
        self._peer_list: list[int] | None = None
        self.beats_sent = 0
        self.beats_received = 0
        self.suspicions = 0
        self.trusts = 0

    @property
    def _swim_active(self) -> bool:
        return self.kernel.config.swim_interval is not None

    @property
    def enabled(self) -> bool:
        """Heartbeat machinery armed? False when SWIM subsumes it."""
        return (self.kernel.config.heartbeat_interval is not None
                and not self._swim_active)

    def _peers(self) -> list[int]:
        if self._peer_list is None:
            me = self.kernel.node_id
            self._peer_list = [n for n in range(self.kernel.config.n_nodes)
                               if n != me]
        return self._peer_list

    def invalidate_peers(self) -> None:
        """View changed (membership callback): recompute on next use."""
        self._peer_list = None

    def start(self) -> None:
        """Arm the heartbeat timer (cluster boot and node recovery)."""
        if not self.enabled or self.kernel.crashed:
            return
        now = self.sim.now
        for peer in self._peers():
            # Unconditional fresh stamps: a recovering node must grant
            # every peer a full grace period, not inherit pre-crash
            # timestamps that would instantly (and wrongly) re-suspect.
            self._last_heard[peer] = now
        if self._timer is None:
            self._timer = self.kernel.timers.set(
                self.kernel.config.heartbeat_interval, self._tick,
                recurring=True)

    def _tick(self) -> None:
        if self.kernel.crashed:
            return
        me = self.kernel.node_id
        interval = self.kernel.config.heartbeat_interval
        horizon = self.kernel.config.suspect_after * interval
        now = self.sim.now
        for peer in self._peers():
            self.kernel.send(peer, MSG_HEARTBEAT, {"from": me}, size=16)
            self.beats_sent += 1
            if (peer not in self._suspected
                    and now - self._last_heard.get(peer, now) > horizon):
                self._suspected.add(peer)
                self.suspicions += 1
                self.kernel.tracer.emit("failure", "suspect", node=me,
                                        peer=peer)

    def on_beat(self, message: Message) -> None:
        """Kernel dispatch entry for :data:`MSG_HEARTBEAT`."""
        peer = message.src
        self._last_heard[peer] = self.sim.now
        self.beats_received += 1
        if peer in self._suspected:
            self._suspected.discard(peer)
            self.trusts += 1
            self.kernel.tracer.emit("failure", "trust",
                                    node=self.kernel.node_id, peer=peer)

    def is_suspected(self, node: int) -> bool:
        if self._swim_active:
            return self.kernel.membership.is_failed(node)
        return node in self._suspected

    def suspected(self) -> list[int]:
        if self._swim_active:
            membership = self.kernel.membership
            return sorted(n for n in membership._status
                          if membership.is_failed(n))
        return sorted(self._suspected)

    def on_crash(self) -> None:
        """The node died; its opinions die with it. The timer is
        cancelled explicitly — owning the lifecycle here rather than
        leaning on the kernel's bulk ``timers.cancel_all`` means no
        beat can ever fire from a crashed node even if crash ordering
        changes — and the stale suspicion set is cleared so it cannot
        survive into recovery."""
        if self._timer is not None:
            self.kernel.timers.cancel(self._timer)
            self._timer = None
        self._last_heard.clear()
        self._suspected.clear()
        self._peer_list = None

    def stats(self) -> dict[str, int]:
        return {"beats_sent": self.beats_sent,
                "beats_received": self.beats_received,
                "suspicions": self.suspicions, "trusts": self.trusts,
                "suspected": len(self._suspected)}
