"""Per-node timer service.

Timers are the system's alarm facility: the kernel raises a TIMER event
(or runs an arbitrary callback) after an interval, optionally recurring.
Thread-attribute timers (§6.2 of the paper: a monitor attaches a TIMER to
a thread and the registration is *recreated on every node the thread
visits*) are re-armed through this service by the invocation engine.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Callable

from repro.errors import KernelError
from repro.sim.scheduler import Handle, Simulator


@dataclass
class TimerEntry:
    """One armed timer on a node."""

    timer_id: int
    interval: float
    callback: Callable[..., Any]
    args: tuple
    recurring: bool
    handle: Handle
    fired: int = 0
    cancelled: bool = False


class TimerService:
    """Arms, fires, re-arms and cancels timers against virtual time."""

    def __init__(self, sim: Simulator, node_id: int) -> None:
        self.sim = sim
        self.node_id = node_id
        self._timers: dict[int, TimerEntry] = {}
        self._ids = itertools.count(1)

    def set(self, interval: float, callback: Callable[..., Any], *args: Any,
            recurring: bool = False) -> int:
        """Arm a timer; returns its id for cancellation."""
        if interval <= 0:
            raise KernelError(f"timer interval must be positive, got {interval!r}")
        timer_id = next(self._ids)
        handle = self.sim.call_after(interval, self._fire, timer_id)
        self._timers[timer_id] = TimerEntry(
            timer_id=timer_id, interval=float(interval), callback=callback,
            args=args, recurring=recurring, handle=handle)
        return timer_id

    def cancel(self, timer_id: int) -> bool:
        """Disarm a timer. Returns False if unknown or already done."""
        entry = self._timers.pop(timer_id, None)
        if entry is None or entry.cancelled:
            return False
        entry.cancelled = True
        entry.handle.cancel()
        return True

    def cancel_all(self) -> int:
        """Disarm every timer on this node; returns how many."""
        ids = list(self._timers)
        return sum(1 for timer_id in ids if self.cancel(timer_id))

    def active(self) -> list[int]:
        return sorted(self._timers)

    def _fire(self, timer_id: int) -> None:
        entry = self._timers.get(timer_id)
        if entry is None or entry.cancelled:
            return
        entry.fired += 1
        if entry.recurring:
            entry.handle = self.sim.call_after(entry.interval, self._fire,
                                               timer_id)
        else:
            del self._timers[timer_id]
        entry.callback(*entry.args)
