"""Cluster-wide configuration.

All timing constants the simulation charges for kernel operations live
here, so experiments can sweep them (e.g. E3 sweeps
``thread_create_cost`` to show what the master-handler-thread optimisation
saves).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import KernelError

#: Locator strategy names (section 7.1 of the paper). ``cached`` is the
#: optimisation the paper leaves on the table: remember where the thread
#: was last found and post there directly, falling back to a base
#: strategy on a miss.
LOCATE_BROADCAST = "broadcast"
LOCATE_PATH = "path"
LOCATE_MULTICAST = "multicast"
LOCATE_CACHED = "cached"
BASE_LOCATOR_NAMES = (LOCATE_BROADCAST, LOCATE_PATH, LOCATE_MULTICAST)
LOCATOR_NAMES = BASE_LOCATOR_NAMES + (LOCATE_CACHED,)

#: Invocation transports (section 2: "RPC or DSM").
TRANSPORT_RPC = "rpc"
TRANSPORT_DSM = "dsm"
TRANSPORT_NAMES = (TRANSPORT_RPC, TRANSPORT_DSM)

#: Object-event execution modes (section 7: master handler thread vs
#: creating a thread per event).
OBJ_EVENTS_MASTER = "master"
OBJ_EVENTS_PER_EVENT = "per-event"

#: Scheduler backends (:mod:`repro.sim.scheduler`). ``heap`` is the
#: bit-identical reference; ``wheel`` is the timing-wheel / calendar
#: queue fast path with an overflow heap for far-future timers.
SCHEDULER_HEAP = "heap"
SCHEDULER_WHEEL = "wheel"
SCHEDULER_NAMES = (SCHEDULER_HEAP, SCHEDULER_WHEEL)

#: Transport backends (:mod:`repro.transport`): ``sim`` is the
#: deterministic single-process simulator (the bit-identical reference),
#: ``sharded`` one shard of a conservatively-synchronized multi-process
#: simulation, and ``tcp`` the same cluster on real asyncio sockets with
#: wall-clock timers.
TRANSPORT_BACKEND_SIM = "sim"
TRANSPORT_BACKEND_SHARDED = "sharded"
TRANSPORT_BACKEND_TCP = "tcp"
TRANSPORT_BACKEND_NAMES = (TRANSPORT_BACKEND_SIM, TRANSPORT_BACKEND_SHARDED,
                           TRANSPORT_BACKEND_TCP)


def shard_bounds(n_nodes: int, shard_count: int,
                 shard_index: int) -> tuple[int, int]:
    """Contiguous node-id block ``[lo, hi)`` owned by one shard.

    Remainder nodes go to the lowest-indexed shards, so every shard's
    block is computable by every other shard without coordination.
    """
    base, rem = divmod(n_nodes, shard_count)
    lo = shard_index * base + min(shard_index, rem)
    hi = lo + base + (1 if shard_index < rem else 0)
    return lo, hi


def shard_owner_map(n_nodes: int, shard_count: int) -> dict[int, int]:
    """``node_id -> owning shard`` for every node, computed once.

    Shared by the sharded runner's routing table and
    :meth:`~repro.transport.sharded.ShardContext.owner_shard`, which
    used to re-derive it with a linear scan over the shard bounds on
    every call.
    """
    owner: dict[int, int] = {}
    for shard in range(shard_count):
        lo, hi = shard_bounds(n_nodes, shard_count, shard)
        for node_id in range(lo, hi):
            owner[node_id] = shard
    return owner


#: Admission-control shedding policies (overload control, E13).
#: ``drop`` rejects over-watermark posts with §7.2 undeliverable
#: notices; ``degrade`` downgrades non-durable posts from reliable to
#: fire-and-forget (durable posts are deferred instead); ``defer``
#: parks durable posts in the transactional outbox for later flush
#: (non-durable posts are dropped with a notice).
OVERLOAD_DROP = "drop"
OVERLOAD_DEGRADE = "degrade"
OVERLOAD_DEFER = "defer"
OVERLOAD_POLICY_NAMES = (OVERLOAD_DROP, OVERLOAD_DEGRADE, OVERLOAD_DEFER)


@dataclass
class ClusterConfig:
    """Knobs for building a simulated DO/CT cluster.

    Attributes
    ----------
    n_nodes:
        Number of nodes in the cluster.
    seed:
        Seed for all random streams.
    link_latency:
        One-way remote message latency in seconds (fixed model unless a
        custom model is installed on the fabric afterwards).
    locator:
        Thread-location strategy for event posting.
    default_transport:
        How invocations reach remote objects by default.
    object_event_mode:
        Whether object-based events are served by a per-node master
        handler thread or by a freshly created thread per event.
    thread_create_cost:
        Virtual seconds to create a thread (charged for spawned threads
        and per-event handler threads).
    surrogate_cost:
        Virtual seconds to set up a surrogate thread for a thread-based
        handler.
    context_switch_cost:
        Virtual seconds to suspend/resume a thread at event delivery.
    attach_cost:
        Virtual seconds for attach_handler bookkeeping.
    page_size:
        Bytes per DSM page.
    dsm_fields_per_page:
        How many object fields share one DSM page (false sharing knob).
    locate_timeout:
        Virtual seconds a broadcast locate waits before concluding the
        thread is dead.
    trace_net:
        Store per-message trace records (muted for big benchmarks).
    """

    n_nodes: int = 4
    seed: int = 0
    link_latency: float = 1e-3
    locator: str = LOCATE_PATH
    default_transport: str = TRANSPORT_RPC
    object_event_mode: str = OBJ_EVENTS_MASTER
    thread_create_cost: float = 2e-4
    surrogate_cost: float = 5e-5
    context_switch_cost: float = 1e-5
    attach_cost: float = 1e-6
    page_size: int = 4096
    dsm_fields_per_page: int = 1
    locate_timeout: float = 1.0
    #: Fail a raise_and_wait raiser after this many virtual seconds if no
    #: resume arrived (None = wait forever). Guards against message loss.
    sync_raise_timeout: float | None = None
    locate_retries: int = 8
    locate_retry_delay: float = 2e-3
    #: Base strategy the ``cached`` locator falls back to when it has no
    #: hint or exhausted its forwarding budget.
    cache_fallback: str = LOCATE_PATH
    #: Per-node capacity of the tid -> node location-hint table (LRU).
    location_hint_capacity: int = 1024
    #: Retained samples in the event manager's delivery-latency reservoir.
    latency_reservoir_capacity: int = 4096
    #: Post an ABORT event to each object a terminating thread unwinds out
    #: of, so "all of the objects get a chance to perform appropriate
    #: cleanup operations" (§6.3).
    notify_abort_on_unwind: bool = True
    #: Route event posts, locator traffic, RPC and invocation messages
    #: through each node's :class:`~repro.net.reliable.ReliableChannel`
    #: (at-least-once with dedup). Off by default: the fault-free
    #: experiments keep their fire-and-forget message counts.
    reliable_delivery: bool = False
    #: First retransmission timeout (virtual seconds).
    retransmit_base: float = 4e-3
    #: Backoff multiplier applied per retransmission.
    retransmit_backoff: float = 2.0
    #: Retransmission budget before a reliable send gives up.
    max_retransmits: int = 10
    #: Per-sender bound on remembered out-of-order sequence numbers.
    dedup_window: int = 1024
    #: Transport fast path (all default on; semantics are identical
    #: either way, only envelope and simulator-heap counts change).
    #: Coalescing window for cumulative acks (virtual seconds): arrivals
    #: from one peer within the window share a single ack. 0 = ack every
    #: arrival immediately (still cumulative). Keep well below
    #: ``retransmit_base`` minus a round trip or delayed acks trigger
    #: spurious retransmissions.
    ack_delay: float = 1e-3
    #: Ride a pending cumulative ack on any reverse-direction data
    #: message instead of a dedicated ``rel.ack`` envelope.
    ack_piggyback: bool = True
    #: Journal group-target posts as one batch commit
    #: (:meth:`repro.store.journal.NodeJournal.append_batch`) instead of
    #: one commit per member record.
    journal_group_commit: bool = True
    #: Default timeout for RPC requests made without an explicit one
    #: (None = wait forever, the seed behaviour).
    rpc_default_timeout: float | None = None
    #: Times an idempotent RPC request is re-issued after a timeout
    #: before the caller sees RpcTimeout.
    rpc_retries: int = 0
    #: Backstop deadline (virtual seconds) for an asynchronous post: if
    #: neither success nor failure has been reported by then, the raiser
    #: gets an undeliverable notice (None = no backstop).
    post_deadline: float | None = None
    #: Journal every post in the origin node's write-ahead log before the
    #: first send, hold it in the outbox until the handler side acks, and
    #: replay the journal on recovery (:mod:`repro.store`). Implies
    #: ``reliable_delivery`` (redelivery rides the reliable channel).
    durable_delivery: bool = False
    #: Journal appends between automatic checkpoints (snapshot + log
    #: truncation); None = checkpoint only on explicit request.
    checkpoint_interval: int | None = 64
    #: Self-quenching outbox flush period (virtual seconds): parked
    #: entries — reliable sends that gave up — are re-dispatched this
    #: often until acked. None disables the timer (recovery
    #: announcements still redeliver).
    outbox_flush_interval: float | None = 0.25
    #: Virtual seconds charged per journal record replayed at recovery;
    #: redelivery and the recovery announcement wait this long.
    replay_cost: float = 2e-5
    #: Handler supervision (all default off: zero extra simulator events
    #: and byte-identical same-seed runs unless a knob is enabled).
    #: Watchdog deadline (virtual seconds) for a supervised handler
    #: execution; on expiry the surrogate is cancelled, the chain falls
    #: through, and a HANDLER_TIMEOUT system event is raised on the
    #: owning thread. Overridable per attach. None = no watchdog.
    handler_deadline: float | None = None
    #: Retries (with exponential backoff) for a buddy/remote handler
    #: invocation that fails with a crash/give-up error. 0 = no retries.
    handler_retries: int = 0
    #: Base backoff delay (virtual seconds) for handler retries and
    #: poison-chain re-runs; attempt k waits backoff * 2**k.
    handler_backoff: float = 4e-3
    #: Consecutive buddy-invocation failures that open the per-
    #: (buddy-oid, event) circuit breaker. None = breakers disabled.
    breaker_threshold: int | None = None
    #: Virtual seconds an open breaker waits before letting one
    #: half-open probe through.
    breaker_reset: float = 0.25
    #: Times an event's *entire* chain may fail before the block is
    #: moved to the node's dead-letter queue. None = never quarantine.
    poison_threshold: int | None = None
    #: Failure-detector heartbeat period (virtual seconds); None
    #: disables the detector (no heartbeat traffic at all). Subsumed by
    #: SWIM when ``swim_interval`` is set: the heartbeat machinery stays
    #: inert and :class:`~repro.kernel.failure.FailureDetector` becomes
    #: a thin adapter over gossip suspicion.
    heartbeat_interval: float | None = None
    #: Missed heartbeats before a peer is suspected; suspicion fails
    #: buddy posts fast instead of waiting out retransmission give-up.
    suspect_after: int = 3
    #: SWIM gossip membership (:mod:`repro.kernel.membership`; all
    #: default off: no timers, no messages, no state transitions, and
    #: bit-identical same-seed digests).
    #: Protocol period (virtual seconds): once per period each node
    #: pings one member chosen by randomized round-robin — O(1) failure
    #: detection load per node per period regardless of cluster size.
    #: None disables membership entirely.
    swim_interval: float | None = None
    #: Direct-ack wait before falling back to indirect ping-req probes;
    #: None = ``swim_interval / 3``.
    swim_ping_timeout: float | None = None
    #: How long a suspected member may stay silent before it is
    #: confirmed dead (the refutation window); None =
    #: ``3 * swim_interval``.
    swim_suspect_timeout: float | None = None
    #: Proxies asked to ping an unresponsive target on the prober's
    #: behalf (the SWIM k parameter). 0 = direct pings only.
    swim_indirect_probes: int = 3
    #: Maximum membership updates piggybacked on one outbound message.
    swim_gossip_max: int = 6
    #: Disseminate join/alive/suspect/confirm updates by piggybacking
    #: them on *existing* outbound traffic (the ``Message.gossip``
    #: field) in addition to SWIM's own probes.
    swim_piggyback: bool = True
    #: Overload control (all default off: zero behaviour change and
    #: bit-identical same-seed runs unless a knob is enabled).
    #: Credit-based flow control: per-peer in-flight window on the
    #: reliable channel. A sender may have at most this many unacked
    #: messages outstanding to one peer; excess sends park until
    #: cumulative acks replenish credits. The window is halved on
    #: retransmission and recovered one credit per productive ack
    #: (AIMD), so a struggling peer sheds incoming pressure. None
    #: disables flow control (unbounded in-flight, the seed behaviour).
    flow_credits: int | None = None
    #: Admission-control high watermark: when a node's outstanding
    #: admitted-post depth reaches this, new posts raised at the node
    #: are shed per ``overload_policy`` until the depth drains to
    #: ``admission_low``. None disables admission control.
    admission_high: int | None = None
    #: Admission-control low watermark (hysteresis): shedding stops once
    #: depth falls back to this. Defaults to half of ``admission_high``.
    admission_low: int | None = None
    #: What to do with a post shed by admission control: ``drop``
    #: (undeliverable notice, §7.2), ``degrade`` (reliable →
    #: fire-and-forget for idempotent non-durable posts) or ``defer``
    #: (park durable posts in the outbox for later flush). Durable
    #: posts are never dropped: under ``drop``/``degrade`` they defer.
    overload_policy: str = OVERLOAD_DROP
    #: Weighted-fair admission while shedding: maps raiser node id to a
    #: relative weight. While the gate is shedding, tenant t keeps
    #: admitting until its share of ``admission_low`` (proportional to
    #: its weight) is outstanding, so one hot tenant cannot starve the
    #: rest. Empty = shed every tenant alike while over the watermark.
    tenant_weights: dict = field(default_factory=dict)
    #: Transport backend carrying every inter-node message
    #: (:mod:`repro.transport`): ``sim`` — deterministic single-process
    #: simulator, bit-identical to the pre-port tree; ``sharded`` — one
    #: shard of a multi-process conservative-time-window simulation
    #: (build whole runs through
    #: :func:`repro.transport.sharded.run_sharded`); ``tcp`` — real
    #: asyncio TCP sockets on loopback with wall-clock timers.
    transport: str = TRANSPORT_BACKEND_SIM
    #: Worker processes a ``sharded`` run partitions the nodes across.
    shard_count: int = 1
    #: Which shard this Cluster instance hosts (set by the sharded
    #: runner inside each worker; None everywhere else).
    shard_index: int | None = None
    #: Conservative synchronization window (virtual seconds) for the
    #: sharded backend; must not exceed the minimum cross-shard link
    #: latency (the lookahead). None = use ``cross_shard_latency`` when
    #: declared, else ``link_latency``.
    shard_window: float | None = None
    #: Declared minimum *cross-shard* latency (virtual seconds) when a
    #: custom latency model guarantees inter-shard messages are slower
    #: than ``link_latency`` — the window may then stretch up to it,
    #: cutting barrier rounds. The declaration is trusted at window
    #: sizing time and still enforced per message at the barrier
    #: (`take_outbound` raises on any violation). None = the fixed
    #: model's ``link_latency`` is the lookahead.
    cross_shard_latency: float | None = None
    #: Encode cross-process envelopes with the compact wire codec
    #: (:mod:`repro.transport.codec`) instead of per-message pickle, on
    #: both the sharded barrier pipes and TCP frames. Decoding rebuilds
    #: objects exactly like unpickling (no id counters advance), so
    #: same-seed digests are bit-identical either way.
    wire_codec: bool = True
    #: Ship one encoded blob per (shard, window) across the barrier
    #: pipes instead of one pickle per message, and sort/merge arrivals
    #: worker-side. Injection order is unchanged, so digests are
    #: bit-identical; off = the PR 8 per-message protocol.
    shard_window_batching: bool = True
    #: Elide barrier rounds for quiescent windows: when no cross-shard
    #: message is in flight, jump the window counter to the earliest
    #: shard-reported next-event time (conservative: a skipped window
    #: provably carried no traffic). Executed events and digests are
    #: identical; only the number of barrier round-trips changes.
    shard_quiescent_skip: bool = True
    #: multiprocessing start method for sharded workers: ``fork`` skips
    #: the ~0.2 s/worker interpreter re-import (workers reset module id
    #: counters so runs stay bit-identical with ``spawn``); None =
    #: ``fork`` where the platform offers it, else ``spawn``.
    shard_start_method: str | None = None
    #: Bind host for the ``tcp`` backend's per-node listening sockets.
    tcp_host: str = "127.0.0.1"
    #: First listening port for the ``tcp`` backend (node i binds
    #: ``tcp_base_port + i``); 0 = ephemeral ports chosen by the OS.
    tcp_base_port: int = 0
    #: Receiver-side dedup window for *degraded* (fire-and-forget)
    #: posts: how many recent degraded block ids each node remembers per
    #: peer to suppress fabric duplicates that carry no rel header.
    #: None = follow ``dedup_window`` (the PR 7 behaviour).
    degrade_dedup_window: int | None = None
    #: Discrete-event scheduler backend: ``heap`` (the bit-identical
    #: reference, default) or ``wheel`` (timing wheel / calendar queue;
    #: same execution order — the differential tests hold both to
    #: identical traces — different push/pop cost profile).
    scheduler: str = SCHEDULER_HEAP
    #: Wheel bucket width in virtual seconds; callbacks within one tick
    #: share a bucket. Pick near the workload's natural event spacing
    #: (ignored by the heap backend).
    wheel_tick: float = 1e-3
    #: Near-window width in ticks; entries ``wheel_slots * wheel_tick``
    #: past the window base spill to the overflow heap until the wheel
    #: drains to them (ignored by the heap backend).
    wheel_slots: int = 4096
    trace_net: bool = True
    extra: dict = field(default_factory=dict)

    # -- transport helpers ---------------------------------------------

    def local_node_ids(self) -> range:
        """Global node ids this Cluster instance hosts.

        Everything for the single-process backends; this shard's
        contiguous block for a sharded worker.
        """
        if (self.transport == TRANSPORT_BACKEND_SHARDED
                and self.shard_index is not None):
            lo, hi = shard_bounds(self.n_nodes, self.shard_count,
                                  self.shard_index)
            return range(lo, hi)
        return range(self.n_nodes)

    def effective_shard_window(self) -> float:
        """Lookahead window for conservative shard synchronization."""
        if self.shard_window is not None:
            return self.shard_window
        if self.cross_shard_latency is not None:
            return self.cross_shard_latency
        return self.link_latency

    def effective_swim_ping_timeout(self) -> float:
        """Direct-ack wait before indirect probes (requires SWIM on)."""
        if self.swim_ping_timeout is not None:
            return self.swim_ping_timeout
        return self.swim_interval / 3.0

    def effective_swim_suspect_timeout(self) -> float:
        """Refutation window before a suspect is confirmed dead."""
        if self.swim_suspect_timeout is not None:
            return self.swim_suspect_timeout
        return 3.0 * self.swim_interval

    def effective_cross_shard_latency(self) -> float:
        """The lookahead bound: declared cross-shard minimum latency,
        or the fixed model's ``link_latency``."""
        if self.cross_shard_latency is not None:
            return self.cross_shard_latency
        return self.link_latency

    def __post_init__(self) -> None:
        if self.durable_delivery:
            # Redelivery rides the reliable channel; durable without
            # reliable would redeliver over fire-and-forget links.
            self.reliable_delivery = True
        if self.checkpoint_interval is not None and self.checkpoint_interval < 1:
            raise KernelError("checkpoint_interval must be >= 1 or None")
        if (self.outbox_flush_interval is not None
                and self.outbox_flush_interval <= 0):
            raise KernelError("outbox_flush_interval must be positive or None")
        if self.replay_cost < 0:
            raise KernelError("replay_cost must be non-negative")
        if self.n_nodes < 1:
            raise KernelError(f"cluster needs at least one node, got {self.n_nodes}")
        if self.locator not in LOCATOR_NAMES:
            raise KernelError(
                f"unknown locator {self.locator!r}; choose from {LOCATOR_NAMES}")
        if self.cache_fallback not in BASE_LOCATOR_NAMES:
            raise KernelError(
                f"unknown cache_fallback {self.cache_fallback!r}; "
                f"choose from {BASE_LOCATOR_NAMES}")
        if self.location_hint_capacity < 1:
            raise KernelError("location_hint_capacity must be >= 1")
        if self.latency_reservoir_capacity < 1:
            raise KernelError("latency_reservoir_capacity must be >= 1")
        if self.default_transport not in TRANSPORT_NAMES:
            raise KernelError(
                f"unknown transport {self.default_transport!r}; "
                f"choose from {TRANSPORT_NAMES}")
        if self.object_event_mode not in (OBJ_EVENTS_MASTER, OBJ_EVENTS_PER_EVENT):
            raise KernelError(
                f"unknown object_event_mode {self.object_event_mode!r}")
        if self.scheduler not in SCHEDULER_NAMES:
            raise KernelError(
                f"unknown scheduler {self.scheduler!r}; "
                f"choose from {SCHEDULER_NAMES}")
        if self.transport not in TRANSPORT_BACKEND_NAMES:
            raise KernelError(
                f"unknown transport {self.transport!r}; "
                f"choose from {TRANSPORT_BACKEND_NAMES}")
        if self.shard_count < 1:
            raise KernelError("shard_count must be >= 1")
        if self.shard_count > self.n_nodes:
            raise KernelError(
                f"shard_count {self.shard_count} exceeds n_nodes "
                f"{self.n_nodes} (a shard needs at least one node)")
        if self.shard_index is not None and not (
                0 <= self.shard_index < self.shard_count):
            raise KernelError(
                f"shard_index {self.shard_index} out of range for "
                f"shard_count {self.shard_count}")
        if self.shard_window is not None and self.shard_window <= 0:
            raise KernelError("shard_window must be positive or None")
        if (self.cross_shard_latency is not None
                and self.cross_shard_latency <= 0):
            raise KernelError("cross_shard_latency must be positive or None")
        if (self.cross_shard_latency is not None
                and self.cross_shard_latency < self.link_latency):
            raise KernelError(
                "cross_shard_latency declares a *minimum* for messages "
                "between shards and cannot be below link_latency")
        if (self.transport == TRANSPORT_BACKEND_SHARDED
                and self.effective_shard_window()
                > self.effective_cross_shard_latency()):
            raise KernelError(
                "shard_window (the lookahead) must not exceed the "
                "minimum cross-shard latency: a cross-shard message "
                "could arrive inside the window that sent it")
        if self.shard_start_method not in (None, "fork", "spawn",
                                           "forkserver"):
            raise KernelError(
                f"unknown shard_start_method {self.shard_start_method!r}; "
                f"choose fork, spawn, forkserver or None")
        if not (0 <= self.tcp_base_port <= 65535):
            raise KernelError("tcp_base_port must be within [0, 65535]")
        if (self.degrade_dedup_window is not None
                and self.degrade_dedup_window < 1):
            raise KernelError("degrade_dedup_window must be >= 1 or None")
        if self.wheel_tick <= 0:
            raise KernelError("wheel_tick must be positive")
        if self.wheel_slots < 2:
            raise KernelError("wheel_slots must be >= 2")
        for name in ("link_latency", "thread_create_cost", "surrogate_cost",
                     "context_switch_cost", "attach_cost", "locate_timeout",
                     "locate_retry_delay", "retransmit_base", "ack_delay"):
            if getattr(self, name) < 0:
                raise KernelError(f"{name} must be non-negative")
        if self.retransmit_backoff < 1.0:
            raise KernelError("retransmit_backoff must be >= 1")
        if self.max_retransmits < 0 or self.rpc_retries < 0:
            raise KernelError("max_retransmits and rpc_retries must be >= 0")
        if self.dedup_window < 1:
            raise KernelError("dedup_window must be >= 1")
        for name in ("rpc_default_timeout", "post_deadline",
                     "handler_deadline", "heartbeat_interval",
                     "breaker_reset", "swim_interval", "swim_ping_timeout",
                     "swim_suspect_timeout"):
            value = getattr(self, name)
            if value is not None and value <= 0:
                raise KernelError(f"{name} must be positive or None")
        if self.swim_indirect_probes < 0:
            raise KernelError("swim_indirect_probes must be >= 0")
        if self.swim_gossip_max < 1:
            raise KernelError("swim_gossip_max must be >= 1")
        for name in ("breaker_threshold", "poison_threshold"):
            value = getattr(self, name)
            if value is not None and value < 1:
                raise KernelError(f"{name} must be >= 1 or None")
        if self.handler_retries < 0:
            raise KernelError("handler_retries must be >= 0")
        if self.handler_backoff < 0:
            raise KernelError("handler_backoff must be non-negative")
        if self.suspect_after < 1:
            raise KernelError("suspect_after must be >= 1")
        if self.flow_credits is not None and self.flow_credits < 1:
            raise KernelError("flow_credits must be >= 1 or None")
        if self.admission_high is not None:
            if self.admission_high < 1:
                raise KernelError("admission_high must be >= 1 or None")
            if self.admission_low is None:
                self.admission_low = max(1, self.admission_high // 2)
            if not 1 <= self.admission_low <= self.admission_high:
                raise KernelError(
                    "admission_low must satisfy "
                    "1 <= admission_low <= admission_high")
        elif self.admission_low is not None:
            raise KernelError("admission_low requires admission_high")
        if self.overload_policy not in OVERLOAD_POLICY_NAMES:
            raise KernelError(
                f"unknown overload_policy {self.overload_policy!r}; "
                f"choose from {OVERLOAD_POLICY_NAMES}")
        for tenant, weight in self.tenant_weights.items():
            if not isinstance(weight, (int, float)) or weight <= 0:
                raise KernelError(
                    f"tenant_weights[{tenant!r}] must be a positive number")
        if self.page_size < 1 or self.dsm_fields_per_page < 1:
            raise KernelError("page_size and dsm_fields_per_page must be >= 1")
