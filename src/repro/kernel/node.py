"""A cluster node and its kernel.

The :class:`Kernel` is a thin composition shell: it owns the node-local
services (RPC endpoint, timer service, thread table) and a message
dispatch table. Higher layers — the object manager, the invocation
engine, the event manager, the DSM manager — are attached by the cluster
builder (:mod:`repro.kernel.boot`) and register their message types here.
This keeps the kernel package free of upward imports.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable

from repro.errors import KernelError
from repro.kernel.rpc import MSG_REPLY, MSG_REQUEST, RpcEngine
from repro.kernel.tcb import LocationHintTable, ThreadTable
from repro.kernel.timers import TimerService
from repro.net.message import Message

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.kernel.boot import Cluster


class Kernel:
    """Per-node kernel: local services plus a message dispatch table."""

    def __init__(self, cluster: "Cluster", node_id: int) -> None:
        self.cluster = cluster
        self.node_id = node_id
        self.sim = cluster.sim
        self.fabric = cluster.fabric
        self.config = cluster.config
        self.tracer = cluster.tracer
        self.rpc = RpcEngine(cluster.sim, cluster.fabric, node_id)
        self.timers = TimerService(cluster.sim, node_id)
        self.thread_table = ThreadTable(node_id)
        self.location_hints = LocationHintTable(
            node_id, capacity=cluster.config.location_hint_capacity)
        # Attached by the cluster builder:
        self.objects: Any = None   # repro.objects.manager.ObjectManager
        self.invoker: Any = None   # repro.objects.invocation.InvocationEngine
        self.events: Any = None    # repro.events.delivery.EventManager
        self.dsm: Any = None       # repro.dsm.manager.DsmManager
        self.id_allocator: Any = None  # repro.threads.ids.IdAllocator
        self._dispatch: dict[str, Callable[[Message], None]] = {
            MSG_REQUEST: self.rpc.on_request,
            MSG_REPLY: self.rpc.on_reply,
        }
        cluster.fabric.attach(node_id, self.deliver)

    def __repr__(self) -> str:  # pragma: no cover - diagnostic only
        return f"<Kernel node={self.node_id}>"

    def register_message_handler(self, mtype: str,
                                 fn: Callable[[Message], None]) -> None:
        """Route messages of ``mtype`` arriving at this node to ``fn``."""
        if mtype in self._dispatch:
            raise KernelError(
                f"node {self.node_id}: message type {mtype!r} already handled")
        self._dispatch[mtype] = fn

    def deliver(self, message: Message) -> None:
        """Fabric delivery callback: dispatch by message type."""
        fn = self._dispatch.get(message.mtype)
        if fn is None:
            raise KernelError(
                f"node {self.node_id} received unroutable message "
                f"type {message.mtype!r}")
        fn(message)

    def send(self, dst: int, mtype: str, payload: Any = None,
             size: int = 64) -> None:
        """Fire-and-forget message to another node."""
        self.fabric.send(Message(src=self.node_id, dst=dst, mtype=mtype,
                                 payload=payload, size=size))


class Node:
    """A machine in the simulated cluster."""

    def __init__(self, cluster: "Cluster", node_id: int) -> None:
        self.node_id = node_id
        self.kernel = Kernel(cluster, node_id)

    def __repr__(self) -> str:  # pragma: no cover - diagnostic only
        return f"<Node {self.node_id}>"
