"""A cluster node and its kernel.

The :class:`Kernel` is a thin composition shell: it owns the node-local
services (RPC endpoint, timer service, thread table) and a message
dispatch table. Higher layers — the object manager, the invocation
engine, the event manager, the DSM manager — are attached by the cluster
builder (:mod:`repro.kernel.boot`) and register their message types here.
This keeps the kernel package free of upward imports.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable

from repro.errors import KernelError, NodeCrashedError
from repro.events.supervise import DeadLetterQueue
from repro.kernel.failure import MSG_HEARTBEAT, FailureDetector
from repro.kernel.membership import (
    MSG_SWIM_ACK,
    MSG_SWIM_GOSSIP,
    MSG_SWIM_PING,
    MSG_SWIM_PING_REQ,
    Membership,
)
from repro.kernel.rpc import MSG_REPLY, MSG_REQUEST, RpcEngine
from repro.kernel.tcb import LocationHintTable, ThreadTable
from repro.kernel.timers import TimerService
from repro.net.message import Message
from repro.net.reliable import MSG_REL_ACK, ReliableChannel
from repro.store.manager import MSG_STORE_ACK, NodeStore

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.kernel.boot import Cluster


class Kernel:
    """Per-node kernel: local services plus a message dispatch table."""

    def __init__(self, cluster: "Cluster", node_id: int) -> None:
        self.cluster = cluster
        self.node_id = node_id
        self.sim = cluster.sim
        self.fabric = cluster.fabric
        self.config = cluster.config
        self.tracer = cluster.tracer
        self.rpc = RpcEngine(cluster.sim, cluster.fabric, node_id)
        self.rpc.kernel = self
        self.reliable = ReliableChannel(
            cluster.sim, cluster.fabric, node_id,
            rto_base=cluster.config.retransmit_base,
            backoff=cluster.config.retransmit_backoff,
            max_retransmits=cluster.config.max_retransmits,
            dedup_window=cluster.config.dedup_window,
            ack_delay=cluster.config.ack_delay,
            ack_piggyback=cluster.config.ack_piggyback,
            flow_credits=cluster.config.flow_credits)
        self.crashed = False
        self.timers = TimerService(cluster.sim, node_id)
        self.thread_table = ThreadTable(node_id)
        self.location_hints = LocationHintTable(
            node_id, capacity=cluster.config.location_hint_capacity)
        # The journal lives in the *cluster* store: it is the simulated
        # durable medium, so crash() must not be able to touch it.
        self.store = NodeStore(self, cluster.store.journal(node_id))
        self.membership = Membership(self)
        self.failure = FailureDetector(self)
        # A membership view change invalidates the heartbeat detector's
        # cached peer list (inert unless both layers are enabled).
        self.membership.add_view_listener(self.failure.invalidate_peers)
        self.dead_letters = DeadLetterQueue(self)
        # Attached by the cluster builder:
        self.objects: Any = None   # repro.objects.manager.ObjectManager
        self.invoker: Any = None   # repro.objects.invocation.InvocationEngine
        self.events: Any = None    # repro.events.delivery.EventManager
        self.dsm: Any = None       # repro.dsm.manager.DsmManager
        self.id_allocator: Any = None  # repro.threads.ids.IdAllocator
        self._dispatch: dict[str, Callable[[Message], None]] = {
            MSG_REQUEST: self.rpc.on_request,
            MSG_REPLY: self.rpc.on_reply,
            MSG_REL_ACK: self.reliable.on_ack,
            MSG_STORE_ACK: self.store.on_store_ack,
            MSG_HEARTBEAT: self.failure.on_beat,
            MSG_SWIM_PING: self.membership.on_ping,
            MSG_SWIM_ACK: self.membership.on_ack,
            MSG_SWIM_PING_REQ: self.membership.on_ping_req,
            MSG_SWIM_GOSSIP: self.membership.on_gossip_msg,
        }
        cluster.fabric.attach(node_id, self.deliver)

    def __repr__(self) -> str:  # pragma: no cover - diagnostic only
        return f"<Kernel node={self.node_id}>"

    def register_message_handler(self, mtype: str,
                                 fn: Callable[[Message], None]) -> None:
        """Route messages of ``mtype`` arriving at this node to ``fn``."""
        if mtype in self._dispatch:
            raise KernelError(
                f"node {self.node_id}: message type {mtype!r} already handled")
        self._dispatch[mtype] = fn

    def deliver(self, message: Message) -> None:
        """Fabric delivery callback: dispatch by message type."""
        if message.gossip is not None:
            # Piggybacked membership updates: merge before dispatch (and
            # before rel dedup — a duplicate envelope's gossip is fresh
            # information, and incarnation ordering makes it idempotent).
            self.membership.on_gossip(message.gossip, message.src)
        if message.ack is not None:
            # Piggybacked cumulative ack: settle it before dispatch so a
            # handler's own sends see up-to-date pending state.
            self.reliable.on_cum_ack(message.src, message.ack)
        if message.rel is not None and message.mtype != MSG_REL_ACK:
            if not self.reliable.accept(message):
                return  # duplicate of an already-dispatched message
        fn = self._dispatch.get(message.mtype)
        if fn is None:
            raise KernelError(
                f"node {self.node_id} received unroutable message "
                f"type {message.mtype!r}")
        fn(message)

    def send(self, dst: int, mtype: str, payload: Any = None,
             size: int = 64) -> None:
        """Fire-and-forget message to another node."""
        self.fabric.send(Message(src=self.node_id, dst=dst, mtype=mtype,
                                 payload=payload, size=size))

    def transmit(self, message: Message,
                 on_give_up: Callable[[Message], None] | None = None) -> None:
        """Send through the reliable channel when enabled.

        With ``reliable_delivery`` off this is exactly ``fabric.send``
        (the seed's fire-and-forget semantics, bit-identical traffic).
        With it on, point-to-point remote messages are retransmitted
        until acked; ``on_give_up`` fires if the budget runs out. A
        crashed kernel sends nothing.
        """
        if self.crashed:
            return
        if self.config.reliable_delivery:
            self.reliable.send(message, on_give_up)
        else:
            self.fabric.send(message)

    def transmit_unreliable(self, message: Message) -> None:
        """Fire-and-forget send that bypasses the reliable channel.

        Used by the admission gate's ``degrade`` policy: a shed
        idempotent post is downgraded from retransmit-until-acked to a
        single fabric datagram, so overload sheds retransmit pressure
        instead of amplifying it. A crashed kernel sends nothing.
        """
        if self.crashed:
            return
        self.fabric.send(message)

    # ------------------------------------------------------------------
    # crash / recovery (crash-stop model; objects are persistent,
    # threads and kernel tables are volatile — Clouds semantics)
    # ------------------------------------------------------------------

    def crash(self) -> None:
        """Fail-stop this node: drop off the fabric, lose volatile state.

        Resident threads die; survivors' RPC calls targeting this node
        fail fast; §7.2-style dead-target notices reach raisers whose
        events were queued on the dead threads. Objects homed here keep
        their state (Clouds objects are passive and persistent) and
        become reachable again after :meth:`recover`.
        """
        if self.crashed:
            return
        self.crashed = True
        self.fabric.detach(self.node_id)
        if self.tracer is not None:
            self.tracer.emit("kernel", "crash", node=self.node_id)
        # Kill every thread with a frame here (or rooted here while not
        # yet executing anywhere). Copy: destruction mutates the dict.
        victims = []
        for thread in list(self.cluster.live_threads.values()):
            if any(frame.node == self.node_id for frame in thread.frames):
                victims.append(thread)
            elif not thread.frames and thread.tid.root == self.node_id:
                victims.append(thread)
        error = NodeCrashedError(f"node {self.node_id} crashed")
        for thread in victims:
            self.cluster.invoker.destroy_thread_abrupt(thread, error)
        # A dead node is no thread's location: leave every multicast
        # group it still belongs to, or multicast locates keep offering
        # it as a candidate after recovery.
        groups = self.fabric.multicast_groups
        for group in sorted(groups.groups_of(self.node_id)):
            groups.leave(group, self.node_id)
        # Volatile kernel state is gone.
        self.thread_table.clear()
        self.location_hints.clear()
        self.timers.cancel_all()
        self.reliable.reset()
        self.objects.on_crash()
        self.store.on_crash()
        self.membership.on_crash()
        self.failure.on_crash()
        self.dead_letters.on_crash()
        self.rpc.fail_all(error)
        # Survivors observe the crash (fail-fast for calls in flight).
        for kernel in self.cluster.kernels.values():
            if kernel is not self:
                kernel.rpc.fail_calls_to(self.node_id, error)

    def recover(self) -> None:
        """Rejoin the fabric after a crash.

        Without durability the volatile state comes back empty (the PR 2
        semantics). With ``durable_delivery`` the journal is replayed
        first — outbox, applied set, handler registry, checkpointed
        objects — and once the charged replay time has elapsed the store
        re-dispatches pending posts and announces the recovery so peers
        flush posts addressed here.
        """
        if not self.crashed:
            return
        replayed, replay_time = self.store.recover()
        self.crashed = False
        self.fabric.attach(self.node_id, self.deliver)
        if self.tracer is not None:
            self.tracer.emit("kernel", "recover", node=self.node_id,
                             replayed=replayed)
        if self.config.durable_delivery:
            self.store.schedule_redelivery(replay_time)
        self.membership.rejoin()
        self.failure.start()


class Node:
    """A machine in the simulated cluster."""

    def __init__(self, cluster: "Cluster", node_id: int) -> None:
        self.node_id = node_id
        self.kernel = Kernel(cluster, node_id)

    def __repr__(self) -> str:  # pragma: no cover - diagnostic only
        return f"<Node {self.node_id}>"
