"""Cluster-wide name service.

Applications register well-known objects (a lock manager, a monitor
server, a pager) under string names and look them up from any node. The
paper assumes such a registry exists ("Naming an event involves
registering the name with the operating system", §3; central servers in
§6.2/§6.4 are found by name).

The directory itself is modelled as an idealised replicated service with
zero message cost — the paper's design never charges for name lookups and
no experiment depends on their cost. Event-name registration (user events,
§3) also lives here so that "registering the name with the operating
system" has one home.
"""

from __future__ import annotations

from typing import Any

from repro.errors import EventNameInUseError, NameServiceError, UnknownEventError


class NameService:
    """Cluster-level registry of named objects and named events."""

    def __init__(self) -> None:
        self._bindings: dict[str, Any] = {}
        self._event_names: dict[str, dict] = {}

    # ------------------------------------------------------------------
    # object names
    # ------------------------------------------------------------------

    def register(self, name: str, value: Any) -> None:
        """Bind ``name`` to a value (typically a capability)."""
        if name in self._bindings:
            raise NameServiceError(f"name {name!r} is already bound")
        self._bindings[name] = value

    def rebind(self, name: str, value: Any) -> None:
        """Bind ``name``, replacing any existing binding."""
        self._bindings[name] = value

    def lookup(self, name: str) -> Any:
        try:
            return self._bindings[name]
        except KeyError:
            raise NameServiceError(f"name {name!r} is not bound") from None

    def lookup_or_none(self, name: str) -> Any:
        return self._bindings.get(name)

    def unregister(self, name: str) -> None:
        if name not in self._bindings:
            raise NameServiceError(f"name {name!r} is not bound")
        del self._bindings[name]

    def names(self) -> list[str]:
        return sorted(self._bindings)

    # ------------------------------------------------------------------
    # event names (user events, §3 of the paper)
    # ------------------------------------------------------------------

    def register_event(self, name: str, registrar: object = None,
                       system: bool = False) -> None:
        """Register an event name with the operating system."""
        if name in self._event_names:
            raise EventNameInUseError(f"event {name!r} is already registered")
        self._event_names[name] = {"registrar": registrar, "system": system}

    def event_exists(self, name: str) -> bool:
        return name in self._event_names

    def require_event(self, name: str) -> dict:
        info = self._event_names.get(name)
        if info is None:
            raise UnknownEventError(
                f"event {name!r} was never registered with the system")
        return info

    def is_system_event(self, name: str) -> bool:
        return self.require_event(name)["system"]

    def event_names(self) -> list[str]:
        return sorted(self._event_names)
