"""Distributed liveliness monitoring (§6.2)."""

from repro.monitor.probe import install_monitor
from repro.monitor.server import MonitorServer, Sample

__all__ = ["MonitorServer", "Sample", "install_monitor"]
