"""Per-thread monitoring probe (§6.2).

"To monitor the thread, two facilities are required: a periodic timer
delivered to the thread and a handler to execute when the timer event is
received. … The handler for the event is a procedure that gets mapped
into the thread's per-thread memory area. … the handler simply gets the
suspended thread's state, restarts the thread and sends the information
to a central monitor."

``install_monitor`` attaches exactly that: a TIMER attribute-timer (so
the registration is recreated on every node the thread visits) plus a
CURRENT-context per-thread procedure that samples the suspended thread's
snapshot and ships it to the server with a fire-and-forget asynchronous
invocation — the thread restarts without waiting for the report to
arrive.
"""

from __future__ import annotations

from repro.events import names as event_names
from repro.events.handlers import Decision


def install_monitor(ctx, server_cap, period: float = 0.05):
    """Generator helper: start monitoring the current thread.

    Usage inside an entry point::

        yield from install_monitor(ctx, monitor.cap, period=0.1)

    Returns the timer spec id (for ``ctx.cancel_timer``).
    """

    def monitor_probe(hctx, block):
        snapshot = block.snapshot
        pc = snapshot.program_counter if snapshot is not None else None
        oid, entry_name, steps = pc if pc is not None else (-1, "?", -1)
        # Fire-and-forget: the report travels on its own thread so the
        # monitored thread restarts immediately.
        yield hctx.invoke_async(server_cap, "report", hctx.tid,
                                hctx.node, oid, entry_name, steps,
                                claimable=False)
        return Decision.RESUME

    yield ctx.attach_handler(event_names.TIMER, monitor_probe)
    spec_id = yield ctx.set_timer(period, event=event_names.TIMER,
                                  recurring=True)
    return spec_id
