"""Central monitor server (§6.2).

Receives periodic liveliness samples — current object, "program counter"
(frame step count), node — from monitored threads and keeps a per-thread
history. A real system would join these against symbol tables; here the
samples carry structured frame info directly.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.objects.base import DistObject, entry


@dataclass(frozen=True)
class Sample:
    """One liveliness report from a monitored thread."""

    time: float
    tid: str
    node: int
    oid: int
    entry: str
    steps: int


class MonitorServer(DistObject):
    """Collects samples; offers liveliness queries."""

    def __init__(self, stale_after: float = 1.0):
        super().__init__()
        self.stale_after = stale_after
        self.samples: dict[str, list[Sample]] = {}

    @entry
    def report(self, ctx, tid, node, oid, entry_name, steps):
        """One sample from a monitored thread (sent by its TIMER handler)."""
        yield ctx.compute(1e-6)
        sample = Sample(time=ctx.now, tid=str(tid), node=node, oid=oid,
                        entry=entry_name, steps=steps)
        self.samples.setdefault(sample.tid, []).append(sample)

    @entry
    def history(self, ctx, tid):
        yield ctx.compute(0)
        return list(self.samples.get(str(tid), []))

    @entry
    def liveliness(self, ctx):
        """tid -> (last sample age, stale?) for every monitored thread."""
        yield ctx.compute(0)
        now = ctx.now
        report = {}
        for tid, samples in self.samples.items():
            age = now - samples[-1].time
            report[tid] = {"age": age, "stale": age > self.stale_after,
                           "samples": len(samples),
                           "last_node": samples[-1].node}
        return report

    @entry
    def start_watchdog(self, ctx, period: float = 0.5,
                       action: str = "TERMINATE"):
        """Kill (or signal) monitored threads that have gone silent.

        Spawns an internal sweep thread on the server's node that raises
        ``action`` at every monitored thread whose last sample is older
        than ``stale_after`` — liveliness monitoring (§6.2) promoted to
        enforcement. Returns the sweeper's thread id.
        """
        handle = yield ctx.invoke_async(self.cap, "_watch_loop", period,
                                        action, claimable=False)
        self._watchdog_tid = handle.tid
        return handle.tid

    @entry
    def stop_watchdog(self, ctx):
        yield ctx.compute(0)
        tid = getattr(self, "_watchdog_tid", None)
        if tid is None:
            return False
        thread = ctx._thread.cluster.live_threads.get(tid)
        if thread is not None:
            ctx._thread.cluster.invoker.terminate_thread(
                thread, reason="watchdog stopped")
        self._watchdog_tid = None
        return True

    @entry
    def _watch_loop(self, ctx, period, action):
        cluster = ctx._thread.cluster
        signalled: set[str] = set()
        while True:
            yield ctx.sleep(period)
            now = ctx.now
            for tid_str, samples in self.samples.items():
                if tid_str in signalled:
                    continue
                if not self._is_stalled(samples, now):
                    continue
                from repro.threads.ids import ThreadId

                tid = ThreadId.parse(tid_str)
                if tid not in cluster.live_threads:
                    continue  # finished normally; nothing to enforce
                signalled.add(tid_str)
                yield ctx.raise_event(action, tid)

    def _is_stalled(self, samples, now: float) -> bool:
        """Liveliness test: silent, or reporting without progressing.

        A blocked thread still answers TIMER events (delivery works while
        blocked), so staleness alone is not enough — the "program
        counter" must have moved over a ``stale_after`` window.
        """
        if now - samples[-1].time > self.stale_after:
            return True  # not even reporting: timers gone with the thread
        window = [s for s in samples
                  if s.time >= now - 2 * self.stale_after]
        if len(window) < 3:
            return False
        span = window[-1].time - window[0].time
        if span < self.stale_after:
            return False  # burst delivery after a long compute: not stall
        return len({(s.oid, s.entry, s.steps) for s in window}) == 1

    @entry
    def progressing(self, ctx, tid):
        """True if the thread's program counter advanced between the last
        two samples (liveliness in the §6.2 sense)."""
        yield ctx.compute(0)
        samples = self.samples.get(str(tid), [])
        if len(samples) < 2:
            return None
        a, b = samples[-2], samples[-1]
        return (b.oid, b.entry, b.steps) != (a.oid, a.entry, a.steps)
