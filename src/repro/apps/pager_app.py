"""A complete user-level VM manager application (§6.4).

Ties together the pieces the paper lists: a pageable region (a DSM object
with ``dsm_pageable``), VM_FAULT events requested by worker threads, and
a designated pager server as the buddy handler. The workload has several
threads fault over a shared region; optionally the pager serves private
copies and merges them afterwards, demonstrating the controlled bypass of
strict consistency.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dsm.pager import PagerServer, attach_pager
from repro.kernel.config import TRANSPORT_DSM
from repro.objects.base import DistObject, entry


class PagedRegion(DistObject):
    """A pageable shared memory region accessed by worker threads."""

    dsm_pageable = True
    dsm_pages = 8

    @entry
    def touch(self, ctx, pager_cap, keys, writes):
        """Fault over ``keys``; write each ``writes`` times, then read."""
        yield attach_pager(pager_cap)
        total = 0
        for key in keys:
            for i in range(writes):
                yield ctx.write(key, i)
            value = yield ctx.read(key)
            total += value
        return total

    @entry
    def read_all(self, ctx, pager_cap, keys):
        yield attach_pager(pager_cap)
        values = {}
        for key in keys:
            values[key] = yield ctx.read(key)
        return values


@dataclass
class PagerRunResult:
    """Outcome of one pager workload run."""

    faults_served: int
    vm_faults: int
    page_transfers: int
    merged_pages: int
    virtual_time: float
    per_thread: list


def run_pager_workload(cluster, faulters: int = 4, keys_per_thread: int = 4,
                       writes: int = 3, private_copies: bool = False,
                       pager_node: int = 0,
                       region_node: int = 1) -> PagerRunResult:
    """Build and run the §6.4 workload on an existing cluster.

    ``faulters`` threads (round-robin over the cluster's nodes) each touch
    a disjoint key set of the shared region; with ``private_copies`` the
    pager hands out per-node copies and this function merges them at the
    end.
    """
    pager_cap = cluster.create_object(PagerServer, node=pager_node,
                                      serve_private_copies=private_copies)
    region_cap = cluster.create_object(PagedRegion, node=region_node,
                                       transport=TRANSPORT_DSM)
    n = cluster.config.n_nodes
    threads = []
    for i in range(faulters):
        keys = [f"k{i}.{j}" for j in range(keys_per_thread)]
        threads.append(cluster.spawn(region_cap, "touch", pager_cap, keys,
                                     writes, at=i % n))
    cluster.run()
    merged = 0
    if private_copies:
        segment = cluster.dsm.segment_of(region_cap.oid)
        for page in segment.pages:
            if page.private_copies:
                driver = cluster.spawn(pager_cap, "merge", region_cap.oid,
                                       page.page_id, at=pager_node)
                cluster.run()
                driver.completion.result()
                merged += 1
    stats = cluster.dsm.protocol_stats()
    return PagerRunResult(
        faults_served=cluster.get_object(pager_cap).faults_served,
        vm_faults=stats["vm_faults"],
        page_transfers=stats["page_transfers"],
        merged_pages=merged,
        virtual_time=cluster.now,
        per_thread=[t.completion.result() for t in threads])
