"""Scoped exception handling built on events (§5.2, §6.1).

The paper sketches "simple exception handling" as a restricted use of the
general mechanism:

* the invoker attaches handlers for the exceptional events an entry may
  raise, at the point of invocation;
* the handler's scope is "restricted to its immediate caller" — it is
  detached when the invocation returns.

``invoke_guarded`` packages that discipline.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.events.handlers import Decision


def invoke_guarded(ctx, cap, entry_name: str, *args: Any,
                   handlers: dict[str, Callable] | None = None):
    """Generator helper: invoke with invocation-scoped event handlers.

    ``handlers`` maps event names to per-thread procedures
    ``(hctx, block) -> decision``. Each is attached before the invocation
    and detached after it (whether it returns or raises), giving the
    §5.2 caller-scoped semantics::

        result = yield from invoke_guarded(
            ctx, worker, "divide", 10, 0,
            handlers={"DIV_ZERO": lambda hctx, block: repair(hctx, block)})
    """
    handlers = handlers or {}
    attached: list[tuple[str, int]] = []
    for event, procedure in handlers.items():
        reg_id = yield ctx.attach_handler(event, procedure)
        attached.append((event, reg_id))
    try:
        result = yield ctx.invoke(cap, entry_name, *args)
    finally:
        for event, reg_id in reversed(attached):
            yield ctx.detach_handler(event, reg_id)
    return result


def invoke_declared(ctx, cap, entry_name: str, *args: Any,
                    handler_factory: Callable[[str], Callable] | None = None):
    """Invoke with handlers derived from the entry's *declared* events.

    §5.2's linguistic restraint, fully automated: the entry point's
    signature declares the exceptional events it may raise
    (``@entry(raises=("DIV_ZERO",))``); the invoker attaches one handler
    per declared event for the duration of the call. ``handler_factory``
    maps an event name to a handler procedure (default: terminate the
    thread, the conservative choice).
    """
    target = ctx._thread.cluster.find_object(cap.oid)
    declared = target.entry_raises(entry_name) if target is not None else ()
    factory = handler_factory or (lambda event: terminating())
    handlers = {event: factory(event) for event in declared}
    result = yield from invoke_guarded(ctx, cap, entry_name, *args,
                                       handlers=handlers)
    return result


def repairing(value: Any) -> Callable:
    """A handler procedure that repairs any fault with ``value``."""

    def repair(hctx, block):
        yield hctx.compute(0)
        return (Decision.RESUME, value)

    return repair


def terminating() -> Callable:
    """A handler procedure that terminates the faulting thread."""

    def kill(hctx, block):
        yield hctx.compute(0)
        return Decision.TERMINATE

    return kill
