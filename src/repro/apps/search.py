"""Cooperative parallel search with partial-result notification (§1).

The paper's introduction motivates the facility with exactly this
pattern: "an important distributed programming technique involves
starting up multiple processes (or threads) to perform a task
(concurrently) and then asynchronously notify each other of partial
results obtained (unexpected discoveries, quicker heuristic searches,
etc.). A generalized notification scheme is useful in implementing such
algorithms."

Here: a branch-and-bound minimisation. Workers each own a slice of the
candidate space. Whenever a worker improves the global best, it raises a
``BOUND`` user event to the application's thread group; every member's
handler tightens its local bound (kept in per-thread memory), letting it
prune candidates whose lower bound cannot beat it. Disabling notification
(the ablation in ``benchmarks/bench_a1_ablations.py``) makes every worker
prune only on its own discoveries — measurably more work.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.objects.base import DistObject, entry
from repro.sim.rng import RngRegistry

#: the user event carrying an improved bound
BOUND_EVENT = "BOUND"


@dataclass(frozen=True)
class Candidate:
    """One point of the search space.

    ``lower_bound`` is what a worker can tell cheaply; ``value`` is the
    true cost, discovered only by paying ``explore_cost``.
    """

    lower_bound: float
    value: float


def generate_candidates(seed: int, total: int,
                        optimum_at: float = 0.35) -> list[Candidate]:
    """A reproducible search space with one sharp optimum.

    Values are drawn uniformly; one candidate (at the given relative
    position) is far better than the rest, so whichever worker owns it
    can prune everyone else's work — *if* they hear about it.
    """
    rng = RngRegistry(seed).stream("search-space")
    candidates = []
    for _ in range(total):
        value = rng.uniform(50.0, 100.0)
        slack = rng.uniform(0.0, 10.0)
        candidates.append(Candidate(lower_bound=value - slack, value=value))
    sharp_index = int(total * optimum_at) % total
    candidates[sharp_index] = Candidate(lower_bound=1.0, value=1.5)
    return candidates


class SearchCoordinator(DistObject):
    """Collects per-worker statistics and the final answer."""

    def __init__(self):
        super().__init__()
        self.reports: list[dict] = []

    @entry
    def report(self, ctx, worker_label, best, explored, pruned):
        yield ctx.compute(1e-6)
        self.reports.append({"worker": worker_label, "best": best,
                             "explored": explored, "pruned": pruned})

    @entry
    def summary(self, ctx):
        yield ctx.compute(0)
        if not self.reports:
            return None
        return {
            "best": min(r["best"] for r in self.reports),
            "explored": sum(r["explored"] for r in self.reports),
            "pruned": sum(r["pruned"] for r in self.reports),
            "workers": len(self.reports),
        }


class SearchWorker(DistObject):
    """Explores a slice of candidates, sharing improved bounds by event."""

    @entry
    def search(self, ctx, coordinator_cap, label, candidates,
               explore_cost=1e-3, notify=True):
        memory = ctx.attributes.per_thread_memory
        memory["bound"] = math.inf

        def on_bound(hctx, block):
            incoming = block.user_data
            mem = hctx.attributes.per_thread_memory
            if incoming < mem.get("bound", math.inf):
                mem["bound"] = incoming
            yield hctx.compute(0)

        yield ctx.attach_handler(BOUND_EVENT, on_bound)
        explored = pruned = 0
        best_here = math.inf
        for candidate in candidates:
            bound = min(memory["bound"], best_here)
            if candidate.lower_bound >= bound:
                pruned += 1
                continue
            yield ctx.compute(explore_cost)  # also an interruption point
            explored += 1
            if candidate.value < best_here:
                best_here = candidate.value
                if notify and candidate.value < memory["bound"]:
                    memory["bound"] = candidate.value
                    gid = ctx.gid
                    if gid is not None:
                        yield ctx.raise_event(BOUND_EVENT, gid,
                                              user_data=candidate.value)
        yield ctx.invoke(coordinator_cap, "report", label,
                         best_here, explored, pruned)
        return best_here


@dataclass
class SearchRunResult:
    best: float
    explored: int
    pruned: int
    virtual_time: float
    events_raised: int


def run_search(cluster, workers: int = 4, space: int = 400,
               seed: int = 7, notify: bool = True,
               explore_cost: float = 1e-3) -> SearchRunResult:
    """Build and run the cooperative search on an existing cluster."""
    if not cluster.names.event_exists(BOUND_EVENT):
        cluster.register_event(BOUND_EVENT)
    coordinator = cluster.create_object(SearchCoordinator, node=0)
    worker_obj = cluster.create_object(SearchWorker, node=1)
    candidates = generate_candidates(seed, space)
    slice_size = -(-len(candidates) // workers)
    gid = cluster.new_group()
    threads = []
    n = cluster.config.n_nodes
    before_posts = cluster.events.posts
    for i in range(workers):
        chunk = candidates[i * slice_size:(i + 1) * slice_size]
        threads.append(cluster.spawn(
            worker_obj, "search", coordinator, f"w{i}", chunk,
            explore_cost, notify, at=i % n, group=gid))
    cluster.run()
    probe = cluster.spawn(coordinator, "summary", at=0)
    cluster.run()
    summary = probe.completion.result()
    return SearchRunResult(best=summary["best"],
                           explored=summary["explored"],
                           pruned=summary["pruned"],
                           virtual_time=cluster.now,
                           events_raised=cluster.events.posts - before_posts)
