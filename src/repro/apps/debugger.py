"""A distributed debugger built on buddy handlers (§4.1).

"An extension to this scheme is one where the handler is an entry point
defined in another object. These kinds of handlers are known as 'buddy
handlers' … quite useful in implementing monitors, debuggers, etc. where
an application can specify a central server as the event handler for
events posted to its threads."

The :class:`DebuggerServer` is that central server. A debugged thread
attaches the server's ``on_breakpoint`` handler in buddy context for the
``BREAKPOINT`` user event; hitting a breakpoint raises the event at the
thread itself. Delivery suspends the thread and runs the handler *at the
debugger* (an unscheduled invocation), which parks until someone calls
``resume_thread`` — the suspended thread stays frozen the whole time,
and its snapshot (current object, entry, "program counter", node) is
available for inspection.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.events.handlers import Decision, HandlerContext
from repro.objects.base import DistObject, entry, handler_entry
from repro.sim.primitives import SimFuture
from repro.threads.syscalls import AttachHandler

#: the user event a breakpoint raises
BREAKPOINT_EVENT = "BREAKPOINT"


@dataclass
class StoppedThread:
    """A thread currently parked at a breakpoint."""

    tid: Any
    tag: str
    snapshot: Any
    stopped_at: float
    gate: SimFuture


def attach_debugger(server_cap) -> AttachHandler:
    """Syscall attaching a debugger server as this thread's buddy.

    Usage inside an entry point::

        yield attach_debugger(debugger.cap)
    """
    return AttachHandler(event=BREAKPOINT_EVENT,
                         context=HandlerContext.BUDDY,
                         fn_name="on_breakpoint", target=server_cap)


def breakpoint_here(ctx, tag: str = ""):
    """Syscall raising a breakpoint at the current thread.

    The event is queued for this thread and delivered at the next yield —
    i.e. immediately after this statement::

        yield breakpoint_here(ctx, "before-commit")
    """
    return ctx.raise_event(BREAKPOINT_EVENT, ctx.tid, user_data=tag)


class DebuggerServer(DistObject):
    """Central debugger: holds stopped threads until resumed."""

    def __init__(self):
        super().__init__()
        #: tid-string -> StoppedThread, currently parked
        self.stopped: dict[str, StoppedThread] = {}
        #: all breakpoint hits, for post-mortem inspection
        self.history: list[StoppedThread] = []
        #: breakpoint tags to skip without stopping
        self.disabled_tags: set[str] = set()

    # ------------------------------------------------------------------
    # the buddy handler
    # ------------------------------------------------------------------

    @handler_entry
    def on_breakpoint(self, ctx, block):
        tag = block.user_data or ""
        record = StoppedThread(tid=ctx.tid, tag=tag,
                               snapshot=block.snapshot,
                               stopped_at=ctx.now,
                               gate=SimFuture(ctx._thread.cluster.sim))
        self.history.append(record)
        if tag in self.disabled_tags:
            yield ctx.compute(0)
            return Decision.RESUME
        self.stopped[str(ctx.tid)] = record
        command = yield ctx.wait(record.gate)
        self.stopped.pop(str(ctx.tid), None)
        if command == "kill":
            return Decision.TERMINATE
        return Decision.RESUME

    # ------------------------------------------------------------------
    # debugger UI entries
    # ------------------------------------------------------------------

    @entry
    def list_stopped(self, ctx):
        """tids currently frozen at breakpoints."""
        yield ctx.compute(0)
        return sorted(self.stopped)

    @entry
    def inspect(self, ctx, tid):
        """Frame stack of a stopped thread (the §4.1 'examine' ability)."""
        yield ctx.compute(0)
        record = self.stopped.get(str(tid))
        if record is None or record.snapshot is None:
            return None
        return {
            "tag": record.tag,
            "node": record.snapshot.node,
            "frames": [(f.oid, f.entry, f.steps)
                       for f in record.snapshot.frames],
            "stopped_at": record.stopped_at,
        }

    @entry
    def resume_thread(self, ctx, tid):
        """Let a stopped thread continue."""
        yield ctx.compute(0)
        record = self.stopped.get(str(tid))
        if record is None:
            return False
        record.gate.resolve("continue")
        return True

    @entry
    def kill_thread(self, ctx, tid):
        """Terminate a stopped thread instead of resuming it."""
        yield ctx.compute(0)
        record = self.stopped.get(str(tid))
        if record is None:
            return False
        record.gate.resolve("kill")
        return True

    @entry
    def disable_tag(self, ctx, tag):
        """Stop breaking on a tag (like deleting a breakpoint)."""
        yield ctx.compute(0)
        self.disabled_tags.add(tag)
        return True
