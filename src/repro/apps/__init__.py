"""Applications from §6 of the paper, built on the event facility."""

from repro.apps.debugger import (
    BREAKPOINT_EVENT,
    DebuggerServer,
    attach_debugger,
    breakpoint_here,
)
from repro.apps.exceptions import invoke_guarded, repairing, terminating
from repro.apps.search import (
    BOUND_EVENT,
    SearchCoordinator,
    SearchRunResult,
    SearchWorker,
    generate_candidates,
    run_search,
)
from repro.apps.pager_app import PagedRegion, PagerRunResult, run_pager_workload
from repro.apps.termination import (
    install_ctrl_c,
    press_ctrl_c,
    termination_report,
)

__all__ = [
    "BOUND_EVENT",
    "BREAKPOINT_EVENT",
    "DebuggerServer",
    "PagedRegion",
    "PagerRunResult",
    "SearchCoordinator",
    "SearchRunResult",
    "SearchWorker",
    "attach_debugger",
    "breakpoint_here",
    "generate_candidates",
    "install_ctrl_c",
    "invoke_guarded",
    "press_ctrl_c",
    "repairing",
    "run_pager_workload",
    "run_search",
    "terminating",
    "termination_report",
]
