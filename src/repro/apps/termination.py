"""The "distributed ^C problem" (§6.3).

Terminating a distributed application cleanly requires notifying:

* all threads in the application's thread group (including threads
  spawned by asynchronous invocations), and
* all objects between the root object and wherever the threads currently
  are (so each can clean up — close channels, release resources).

The protocol, exactly as the paper lays it out:

1. every object gets an ABORT handler (the kernel posts ABORT to each
   object a terminating thread unwinds out of — see
   ``ClusterConfig.notify_abort_on_unwind`` — and objects may override
   the default with ``@on_event("ABORT")``);
2. the root object attaches a TERMINATE handler and a QUIT handler to
   the root thread (``install_ctrl_c``); spawned threads inherit both;
3. a ^C raises TERMINATE at the root thread; its handler raises QUIT to
   the whole thread group and lets its own TERMINATE chain proceed
   (running chained cleanup, then the kernel default that unwinds with
   ABORT notifications);
4. each member's QUIT handler re-raises TERMINATE *at that thread*, so
   every member also runs its full TERMINATE chain before dying.
"""

from __future__ import annotations

from repro.events import names as event_names
from repro.events.handlers import Decision


def install_ctrl_c(ctx):
    """Generator helper: attach the §6.3 root handlers to this thread.

    Call from the root object's entry point, before spawning workers,
    so every spawned thread inherits the registrations::

        yield from install_ctrl_c(ctx)
    """

    def root_terminate_handler(hctx, block):
        gid = hctx.gid
        if gid is not None:
            yield hctx.raise_event(event_names.QUIT, gid)
        # Propagate: chained cleanup handlers run, then the kernel
        # default terminates this thread (unwinding aborts the top-level
        # invocation, "causing all objects to be notified").
        return Decision.PROPAGATE

    def quit_handler(hctx, block):
        # Re-raise TERMINATE at this member so its own TERMINATE chain
        # (lock cleanup etc.) runs before it dies.
        yield hctx.raise_event(event_names.TERMINATE, hctx.tid)
        return Decision.RESUME

    yield ctx.attach_handler(event_names.TERMINATE, root_terminate_handler)
    yield ctx.attach_handler(event_names.QUIT, quit_handler)


def press_ctrl_c(cluster, root_tid, from_node: int = 0):
    """The user types ^C at the controlling terminal: raise TERMINATE at
    the root thread. Returns the raise future."""
    return cluster.raise_event(event_names.TERMINATE, root_tid,
                               from_node=from_node)


def termination_report(cluster, gid, caps=()) -> dict:
    """Audit the aftermath of a ^C: orphans, notified objects, lock state.

    Returns a dict with:

    * ``surviving_members`` — tids still alive in the group (should be
      empty);
    * ``orphans`` — live user threads whose group is gone (should be
      empty: "lest they turn into orphans");
    * ``aborted_oids`` — objects that observed an ABORT event, for the
      capabilities passed in ``caps``.
    """
    surviving = [str(tid) for tid in cluster.groups.members_or_empty(gid)
                 if tid in cluster.live_threads]
    orphans = [str(tid) for tid, thread in cluster.live_threads.items()
               if thread.kind == "user" and thread.attributes.group == gid]
    aborted = []
    for cap in caps:
        obj = cluster.find_object(cap.oid if hasattr(cap, "oid") else cap)
        if obj is not None and getattr(obj, "aborted_tids", None):
            aborted.append(obj.oid)
    return {"surviving_members": surviving, "orphans": orphans,
            "aborted_oids": aborted}
