"""The distributed shared memory manager.

Cluster-wide engine implementing:

* object state access under the DSM transport — node-local page tables,
  directory-based MSI coherence at each segment's home node, page
  transfers charged at page size;
* **VM_FAULT integration** (§6.4): touching an unmaterialised page of a
  pageable segment suspends the faulting thread and raises VM_FAULT to
  it; the thread's handler (typically a buddy pager server) supplies the
  page with ``ctx.install_page`` — globally, or as a node-private copy
  that is later merged (deliberately bypassing strict consistency, which
  is the paper's motivation for user-level VM managers);
* a sequential-consistency audit log over all strong accesses.
"""

from __future__ import annotations

import itertools
from typing import TYPE_CHECKING, Any

from repro.errors import DsmError, PagerError, SegmentError
from repro.dsm.consistency import ConsistencyLog
from repro.dsm.directory import DirectoryEntry
from repro.dsm.page import MODE_NONE, MODE_READ, MODE_WRITE, Page, Segment
from repro.events import names as event_names
from repro.events.block import EventBlock
from repro.kernel.config import TRANSPORT_DSM
from repro.kernel.rpc import SizedReply
from repro.sim.primitives import SimFuture

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.kernel.boot import Cluster
    from repro.objects.base import DistObject
    from repro.threads.thread import Activation, DThread

SVC_PAGE = "dsm.page"
SVC_INVAL = "dsm.inval"
SVC_YIELD = "dsm.yield"
#: fire-and-forget ack: the requester installed its granted mode, the
#: directory may start the page's next transaction
MSG_INSTALLED = "dsm.installed"

_segment_ids = itertools.count(1)


class DsmManager:
    """Coherence engine plus fault handling for all DSM segments."""

    def __init__(self, cluster: "Cluster") -> None:
        self.cluster = cluster
        self.log = ConsistencyLog()
        #: oid -> segment
        self._segments: dict[int, Segment] = {}
        #: (segment_id, page_id) -> directory entry (lives at segment home)
        self._directory: dict[tuple[int, int], DirectoryEntry] = {}
        #: (node, segment_id, page_id) -> local access mode
        self._local_modes: dict[tuple[int, int, int], str] = {}
        #: (segment_id, page_id) -> pending faulting accesses
        self._pending_faults: dict[tuple[int, int], list[dict]] = {}
        #: counters for benchmarks
        self.faults = 0
        self.page_transfers = 0
        self.vm_faults_raised = 0
        #: txn id -> directory entry awaiting the requester's install ack
        self._pending_installs: dict[int, DirectoryEntry] = {}
        self._txn_ids = itertools.count(1)
        for kernel in cluster.kernels.values():
            kernel.rpc.serve(SVC_PAGE, self._svc_page)
            kernel.rpc.serve(SVC_INVAL, self._svc_inval)
            kernel.rpc.serve(SVC_YIELD, self._svc_yield)
            kernel.register_message_handler(MSG_INSTALLED,
                                            self._on_installed)

    # ------------------------------------------------------------------
    # segments
    # ------------------------------------------------------------------

    def register_object(self, obj: "DistObject") -> Segment:
        """Create the segment backing a newly-placed DSM object."""
        cls = type(obj)
        fields = getattr(cls, "dsm_fields", None)
        pageable = getattr(cls, "dsm_pageable", False)
        n_pages = getattr(cls, "dsm_pages", 8)
        if fields is None and not pageable:
            raise SegmentError(
                f"{cls.__name__} uses the DSM transport but declares "
                f"neither dsm_fields nor dsm_pageable")
        segment = Segment(segment_id=next(_segment_ids), home=obj.home,
                          page_size=self.cluster.config.page_size,
                          fields=fields,
                          fields_per_page=self.cluster.config
                          .dsm_fields_per_page,
                          pageable=pageable, n_pages=n_pages)
        self._segments[obj.oid] = segment
        obj._dsm_segment = segment
        for page in segment.pages:
            self._directory[(segment.segment_id, page.page_id)] = \
                DirectoryEntry(segment.segment_id, page.page_id)
        self.cluster.tracer.emit("dsm", "segment", oid=obj.oid,
                                 pages=segment.n_pages, pageable=pageable)
        return segment

    def segment_of(self, oid: int) -> Segment:
        segment = self._segments.get(oid)
        if segment is None:
            raise SegmentError(f"object {oid} has no DSM segment")
        return segment

    def directory_entry(self, segment: Segment, page: Page) -> DirectoryEntry:
        return self._directory[(segment.segment_id, page.page_id)]

    def local_mode(self, node: int, segment: Segment, page: Page) -> str:
        return self._local_modes.get(
            (node, segment.segment_id, page.page_id), MODE_NONE)

    def _set_local_mode(self, node: int, segment: Segment, page: Page,
                        mode: str) -> None:
        key = (node, segment.segment_id, page.page_id)
        if mode == MODE_NONE:
            self._local_modes.pop(key, None)
        else:
            self._local_modes[key] = mode

    # ------------------------------------------------------------------
    # field access from running threads
    # ------------------------------------------------------------------

    def field_access(self, thread: "DThread", frame: "Activation",
                     name: str, value: Any, is_write: bool) -> None:
        obj = frame.obj
        if obj is None:
            thread.schedule_step(None, DsmError(
                "ctx.read/ctx.write outside any object"))
            return
        if obj.transport != TRANSPORT_DSM:
            # Transport transparency (§2): the same entry code runs under
            # RPC, where object state is plain local attributes.
            self._plain_access(thread, obj, name, value, is_write)
            return
        try:
            segment = self.segment_of(obj.oid)
            page = segment.page_of(name)
        except SegmentError as exc:
            thread.schedule_step(None, exc)
            return
        epoch = thread.block("dsm")
        self._access(thread, epoch, frame.node, obj, segment, page, name,
                     value, is_write)

    def _plain_access(self, thread: "DThread", obj: "DistObject", name: str,
                      value: Any, is_write: bool) -> None:
        if is_write:
            setattr(obj, name, value)
            thread.schedule_step(None, None)
            return
        if not hasattr(obj, name):
            thread.schedule_step(None, AttributeError(
                f"{type(obj).__name__} has no field {name!r}"))
            return
        thread.schedule_step(getattr(obj, name), None)

    def _access(self, thread: "DThread", epoch: int, node: int,
                obj: "DistObject", segment: Segment, page: Page, name: str,
                value: Any, is_write: bool) -> None:
        if not thread.alive:
            return
        if not page.materialized:
            copy = page.private_copies.get(node)
            if copy is not None:
                self._commit_weak(thread, epoch, node, segment, copy, name,
                                  value, is_write)
                return
            self._raise_vm_fault(thread, epoch, node, obj, segment, page,
                                 name, value, is_write)
            return
        mode = self.local_mode(node, segment, page)
        needed_ok = (mode == MODE_WRITE) or (not is_write and
                                             mode == MODE_READ)
        if needed_ok:
            self._commit(thread, epoch, node, segment, page, name, value,
                         is_write)
            return
        # Miss: ask the directory at the segment's home node.
        self.faults += 1
        self.cluster.tracer.emit("dsm", "miss", node=node,
                                 segment=segment.segment_id,
                                 page=page.page_id, write=is_write)
        fut = self.cluster.kernels[node].rpc.request(
            segment.home, SVC_PAGE,
            {"segment": segment.segment_id, "page": page.page_id,
             "node": node, "write": is_write})

        def granted(f: SimFuture[Any]) -> None:
            if f.failed or f.cancelled:
                try:
                    f.result()
                except BaseException as exc:  # noqa: BLE001
                    thread.resume_with(None, exc, epoch)
                return
            # The directory says which mode it actually granted (a read
            # that raced our own write upgrade keeps WRITE) and a txn id
            # to acknowledge, so invalidations can never overtake grants.
            granted_mode, txn_id = f.result()
            self._set_local_mode(node, segment, page, granted_mode)
            if txn_id is not None:
                self.cluster.kernels[node].send(segment.home,
                                                MSG_INSTALLED,
                                                payload={"txn": txn_id})
            self._commit(thread, epoch, node, segment, page, name, value,
                         is_write)

        fut.add_done_callback(granted)

    def _commit(self, thread: "DThread", epoch: int, node: int,
                segment: Segment, page: Page, name: str, value: Any,
                is_write: bool) -> None:
        if is_write:
            page.write(name, value)
            self.log.record(self.cluster.sim.now, node, segment.segment_id,
                            name, "write", value)
            thread.resume_with(None, None, epoch)
            return
        try:
            result = page.read(name)
        except SegmentError as exc:
            thread.resume_with(None, exc, epoch)
            return
        self.log.record(self.cluster.sim.now, node, segment.segment_id,
                        name, "read", result)
        thread.resume_with(result, None, epoch)

    def _commit_weak(self, thread: "DThread", epoch: int, node: int,
                     segment: Segment, copy: dict, name: str, value: Any,
                     is_write: bool) -> None:
        if is_write:
            copy[name] = value
            self.log.record(self.cluster.sim.now, node, segment.segment_id,
                            name, "write", value, weak=True)
            thread.resume_with(None, None, epoch)
            return
        if name not in copy:
            thread.resume_with(None, SegmentError(
                f"private copy on node {node} has no field {name!r}"), epoch)
            return
        self.log.record(self.cluster.sim.now, node, segment.segment_id,
                        name, "read", copy[name], weak=True)
        thread.resume_with(copy[name], None, epoch)

    # ------------------------------------------------------------------
    # VM_FAULT path (§6.4)
    # ------------------------------------------------------------------

    def _raise_vm_fault(self, thread: "DThread", epoch: int, node: int,
                        obj: "DistObject", segment: Segment, page: Page,
                        name: str, value: Any, is_write: bool) -> None:
        self.vm_faults_raised += 1
        key = (segment.segment_id, page.page_id)
        self._pending_faults.setdefault(key, []).append({
            "thread": thread, "epoch": epoch, "node": node, "obj": obj,
            "segment": segment, "page": page, "name": name, "value": value,
            "write": is_write})
        block = EventBlock(
            event=event_names.VM_FAULT, raiser_tid=None, raiser_node=node,
            target=thread.tid,
            user_data={"oid": obj.oid, "segment": segment.segment_id,
                       "page": page.page_id, "field": name,
                       "write": is_write, "node": node, "tid": thread.tid},
            raised_at=self.cluster.sim.now)
        self.cluster.tracer.emit("dsm", "vm-fault", node=node, oid=obj.oid,
                                 page=page.page_id, field=name,
                                 tid=str(thread.tid))
        self.cluster.events.enqueue_for_thread(node, thread.tid, block)

    def install_page(self, oid: int, page_id: int, values: dict,
                     private_for: int | None = None) -> None:
        """A pager supplies data for a faulted page.

        With ``private_for`` the data becomes a node-private (weakly
        consistent) copy for that node only; otherwise the page is
        materialised globally and enters the coherence protocol.
        """
        segment = self.segment_of(oid)
        page = segment.page(page_id)
        if private_for is not None:
            page.private_copies[private_for] = dict(values)
        else:
            page.values.update(values)
            page.materialized = True
        self.page_transfers += 1
        self.cluster.tracer.emit("dsm", "install", oid=oid, page=page_id,
                                 private=private_for)
        self._retry_faults(segment, page)

    def merge_pages(self, oid: int, page_id: int) -> dict:
        """Merge all private copies of a page into the authoritative page.

        Copies are folded in node order (last writer per field wins),
        then discarded; the page becomes strongly consistent again.
        Returns the merged values.
        """
        segment = self.segment_of(oid)
        page = segment.page(page_id)
        if not page.private_copies:
            raise PagerError(
                f"page {oid}/{page_id} has no private copies to merge")
        for node in sorted(page.private_copies):
            page.values.update(page.private_copies[node])
        page.private_copies.clear()
        page.materialized = True
        self.cluster.tracer.emit("dsm", "merge", oid=oid, page=page_id)
        self._retry_faults(segment, page)
        return dict(page.values)

    def _retry_faults(self, segment: Segment, page: Page) -> None:
        key = (segment.segment_id, page.page_id)
        pending = self._pending_faults.pop(key, [])
        for fault in pending:
            thread = fault["thread"]
            if not thread.alive:
                continue
            self.cluster.sim.call_soon(
                self._access, thread, fault["epoch"], fault["node"],
                fault["obj"], segment, page, fault["name"], fault["value"],
                fault["write"])

    # ------------------------------------------------------------------
    # directory services (run at each segment's home node)
    # ------------------------------------------------------------------

    def _svc_page(self, payload: dict, message: Any) -> SimFuture[Any]:
        entry = self._directory[(payload["segment"], payload["page"])]
        segment = self._segment_by_id(payload["segment"])
        page = segment.page(payload["page"])
        home = segment.home
        node = payload["node"]
        fut: SimFuture[Any] = SimFuture(self.cluster.sim)

        def transaction() -> None:
            if payload["write"]:
                entry.write_misses += 1
                self._do_write_grant(entry, segment, page, home, node, fut)
            else:
                entry.read_misses += 1
                self._do_read_grant(entry, segment, page, home, node, fut)

        entry.submit(transaction)
        return fut

    def _segment_by_id(self, segment_id: int) -> Segment:
        for segment in self._segments.values():
            if segment.segment_id == segment_id:
                return segment
        raise SegmentError(f"no segment {segment_id}")

    def _do_read_grant(self, entry: DirectoryEntry, segment: Segment,
                       page: Page, home: int, node: int,
                       fut: SimFuture[Any]) -> None:
        if entry.mode_of(node) == MODE_WRITE:
            # The requester raced its own write upgrade: it already holds
            # the page exclusively, which subsumes the read. No mode
            # change on the requester, so no install ack to wait for.
            fut.resolve(SizedReply((MODE_WRITE, None), 64))
            entry.complete()
            return
        owner = entry.exclusive_elsewhere(node)

        def grant() -> None:
            try:
                entry.grant_read(node)
            except BaseException as exc:  # noqa: BLE001 - ship to caller
                fut.fail(exc)
                entry.complete()
            else:
                self.page_transfers += 1
                txn_id = next(self._txn_ids)
                self._pending_installs[txn_id] = entry
                fut.resolve(SizedReply((MODE_READ, txn_id),
                                       segment.page_size))

        if owner is None:
            grant()
            return
        yield_fut = self.cluster.kernels[home].rpc.request(
            owner, SVC_YIELD,
            {"segment": segment.segment_id, "page": page.page_id,
             "demote_to": MODE_READ})

        def yielded(f: SimFuture[Any]) -> None:
            entry.drop_node(owner)
            entry.grant_read(owner)  # owner keeps a read copy
            grant()

        yield_fut.add_done_callback(yielded)

    def _do_write_grant(self, entry: DirectoryEntry, segment: Segment,
                        page: Page, home: int, node: int,
                        fut: SimFuture[Any]) -> None:
        if entry.mode_of(node) == MODE_WRITE:
            fut.resolve(SizedReply((MODE_WRITE, None), 64))
            entry.complete()
            return
        holders = sorted(entry.holders_to_invalidate(node))

        def grant() -> None:
            try:
                for holder in holders:
                    entry.drop_node(holder)
                entry.grant_write(node)
            except BaseException as exc:  # noqa: BLE001 - ship to caller
                fut.fail(exc)
                entry.complete()
            else:
                self.page_transfers += 1
                txn_id = next(self._txn_ids)
                self._pending_installs[txn_id] = entry
                fut.resolve(SizedReply((MODE_WRITE, txn_id),
                                       segment.page_size))

        if not holders:
            grant()
            return
        entry.invalidations += len(holders)
        acks = [self.cluster.kernels[home].rpc.request(
            holder, SVC_INVAL,
            {"segment": segment.segment_id, "page": page.page_id})
            for holder in holders]
        remaining = [len(acks)]

        def one_ack(_f: SimFuture[Any]) -> None:
            remaining[0] -= 1
            if remaining[0] == 0:
                grant()

        for ack in acks:
            ack.add_done_callback(one_ack)

    def _on_installed(self, message: Any) -> None:
        """The requester installed its grant; release the page's queue."""
        entry = self._pending_installs.pop(message.payload["txn"], None)
        if entry is not None:
            entry.complete()

    def _svc_inval(self, payload: dict, message: Any) -> bool:
        segment = self._segment_by_id(payload["segment"])
        page = segment.page(payload["page"])
        self._set_local_mode(int(message.dst), segment, page, MODE_NONE)
        return True

    def _svc_yield(self, payload: dict, message: Any) -> SizedReply:
        segment = self._segment_by_id(payload["segment"])
        page = segment.page(payload["page"])
        self._set_local_mode(int(message.dst), segment, page,
                             payload["demote_to"])
        # The writeback carries the page contents home.
        return SizedReply(True, segment.page_size)

    # ------------------------------------------------------------------
    # stats
    # ------------------------------------------------------------------

    def protocol_stats(self) -> dict[str, int]:
        read_misses = sum(e.read_misses for e in self._directory.values())
        write_misses = sum(e.write_misses for e in self._directory.values())
        invals = sum(e.invalidations for e in self._directory.values())
        return {"faults": self.faults, "read_misses": read_misses,
                "write_misses": write_misses, "invalidations": invals,
                "page_transfers": self.page_transfers,
                "vm_faults": self.vm_faults_raised}
