"""User-level virtual memory managers (external pagers, §6.4).

"The basic strategy is that the applications will tag regions of memory
as pageable, request VM_FAULT events and designate a server as the
handler for VM_FAULT events (buddy handler). When any thread faults at an
address, the thread is suspended and the handler attached to the server
is notified. The handler code then supplies a page to satisfy the fault.
If another thread faults on the same memory, the server can supply a copy
of the page, and later merge the pages."

:class:`PagerServer` is the reference implementation: a distributed
object whose ``vm_fault`` handler entry serves faults from a backing
store. Subclasses override :meth:`make_page` to generate content, or set
``serve_private_copies`` to exercise the copy/merge path.
"""

from __future__ import annotations

from typing import Any

from repro.events.handlers import Decision
from repro.objects.base import DistObject, entry, handler_entry
from repro.threads.syscalls import AttachHandler
from repro.events.handlers import HandlerContext
from repro.events import names as event_names


def attach_pager(pager_cap) -> AttachHandler:
    """Syscall attaching a pager server as this thread's VM_FAULT buddy.

    Usage inside an entry point::

        yield attach_pager(pager.cap)
    """
    return AttachHandler(event=event_names.VM_FAULT,
                         context=HandlerContext.BUDDY,
                         fn_name="vm_fault", target=pager_cap)


class PagerServer(DistObject):
    """A central server satisfying VM_FAULT events for pageable segments.

    Parameters
    ----------
    serve_private_copies:
        When True, concurrent faulters each receive a node-private copy
        of the page (weak consistency); call the ``merge`` entry later to
        reconcile. When False (default) the first fault materialises the
        page globally and the coherence protocol takes over.
    service_time:
        Virtual seconds of work per fault (e.g. fetching from backing
        store).
    """

    def __init__(self, serve_private_copies: bool = False,
                 service_time: float = 1e-4) -> None:
        super().__init__()
        self.serve_private_copies = serve_private_copies
        self.service_time = service_time
        self.faults_served = 0
        self.pages_supplied: list[tuple[int, int, int | None]] = []

    # -- policy ----------------------------------------------------------

    def make_page(self, oid: int, page_id: int, field: str) -> dict[str, Any]:
        """Content for a missing page; override for real backing stores.

        The default zero-fills the faulting field (a fresh anonymous
        page).
        """
        return {field: 0}

    # -- the buddy handler ------------------------------------------------

    @handler_entry
    def vm_fault(self, ctx, block):
        """Handle one VM_FAULT: supply the page, resume the faulter."""
        info = block.user_data
        yield ctx.compute(self.service_time)
        self.faults_served += 1
        private_for = info["node"] if self.serve_private_copies else None
        values = self.make_page(info["oid"], info["page"], info["field"])
        self.pages_supplied.append((info["oid"], info["page"], private_for))
        yield ctx.install_page(info["oid"], info["page"], values,
                               private_for=private_for)
        return Decision.RESUME

    # -- management entries ------------------------------------------------

    @entry
    def merge(self, ctx, oid: int, page_id: int):
        """Merge private copies of a page back together (§6.4)."""
        merged = yield ctx.merge_pages(oid, page_id)
        return merged

    @entry
    def stats(self, ctx):
        yield ctx.compute(0.0)
        return {"faults_served": self.faults_served,
                "pages_supplied": len(self.pages_supplied)}
