"""Sequential-consistency audit log.

Every committed DSM read and write is recorded with its virtual commit
time. The checker then verifies the *sequential consistency* the
underlying DSM promises (§1 of the paper presumes "the strict consistency
imposed by the underlying sequentially consistent distributed shared
memory"): every read of a field returns the value of the latest write to
that field that committed before it.

Pages weakened by a user-level pager's private copies (§6.4) are excluded
— bypassing strict consistency is precisely their purpose.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any


@dataclass(frozen=True)
class Access:
    """One committed DSM access."""

    seq: int
    time: float
    node: int
    segment_id: int
    field: str
    op: str  # "read" | "write"
    value: Any
    weak: bool = False


@dataclass(frozen=True)
class Violation:
    """A read that did not return the latest committed write."""

    read: Access
    expected: Any
    actual: Any

    def __str__(self) -> str:  # pragma: no cover - diagnostic only
        return (f"seq {self.read.seq} t={self.read.time}: node "
                f"{self.read.node} read {self.read.field}="
                f"{self.actual!r}, latest write was {self.expected!r}")


class ConsistencyLog:
    """Accumulates accesses and checks them for sequential consistency."""

    def __init__(self) -> None:
        self.accesses: list[Access] = []
        self._seq = 0

    def record(self, time: float, node: int, segment_id: int, field: str,
               op: str, value: Any, weak: bool = False) -> None:
        self._seq += 1
        self.accesses.append(Access(seq=self._seq, time=time, node=node,
                                    segment_id=segment_id, field=field,
                                    op=op, value=value, weak=weak))

    def clear(self) -> None:
        self.accesses.clear()

    def check(self) -> list[Violation]:
        """Return all violations among strongly-consistent accesses."""
        violations: list[Violation] = []
        last_write: dict[tuple[int, str], tuple[bool, Any]] = {}
        for access in self.accesses:
            if access.weak:
                continue
            key = (access.segment_id, access.field)
            if access.op == "write":
                last_write[key] = (True, access.value)
            else:
                seen, expected = last_write.get(key, (False, None))
                if seen and access.value != expected:
                    violations.append(Violation(read=access,
                                                expected=expected,
                                                actual=access.value))
        return violations

    def counts(self) -> dict[str, int]:
        reads = sum(1 for a in self.accesses if a.op == "read")
        writes = len(self.accesses) - reads
        weak = sum(1 for a in self.accesses if a.weak)
        return {"reads": reads, "writes": writes, "weak": weak}
