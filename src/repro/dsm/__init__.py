"""Page-based sequentially-consistent DSM with user-level pagers."""

from repro.dsm.consistency import ConsistencyLog, Violation
from repro.dsm.directory import DirectoryEntry
from repro.dsm.page import MODE_NONE, MODE_READ, MODE_WRITE, Page, Segment
from repro.dsm.pager import PagerServer, attach_pager

__all__ = [
    "ConsistencyLog",
    "DirectoryEntry",
    "MODE_NONE",
    "MODE_READ",
    "MODE_WRITE",
    "Page",
    "PagerServer",
    "Segment",
    "Violation",
    "attach_pager",
]
