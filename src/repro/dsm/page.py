"""Segments and pages backing DSM-transport objects.

An object created with the DSM transport stores its state in a
:class:`Segment`: a set of fixed-size pages, each holding one or more
named fields. Two layouts exist:

* **enumerated** — the class declares ``dsm_fields = {"name": default}``;
  fields are packed ``dsm_fields_per_page`` to a page and materialised
  with their defaults at creation;
* **pageable** — the class sets ``dsm_pageable = True`` (with optional
  ``dsm_pages = N``); field names hash onto pages and pages start
  *unmaterialised*: the first touch raises VM_FAULT to the faulting
  thread, whose handler (typically a buddy pager server, §6.4) must
  supply the page.
"""

from __future__ import annotations

from typing import Any

from repro.errors import SegmentError

#: page access modes a node may hold
MODE_NONE = "none"
MODE_READ = "read"
MODE_WRITE = "write"


class Page:
    """One page of a segment: values plus materialisation state."""

    def __init__(self, page_id: int, size: int) -> None:
        self.page_id = page_id
        self.size = size
        self.materialized = False
        #: authoritative field values (meaningful once materialised)
        self.values: dict[str, Any] = {}
        #: node -> private (weakly consistent) copy installed by a pager
        self.private_copies: dict[int, dict[str, Any]] = {}
        self.version = 0

    def write(self, field: str, value: Any) -> None:
        self.values[field] = value
        self.version += 1

    def read(self, field: str) -> Any:
        if field not in self.values:
            raise SegmentError(
                f"page {self.page_id} has no field {field!r}")
        return self.values[field]


class Segment:
    """The paged state of one DSM object."""

    def __init__(self, segment_id: int, home: int, page_size: int,
                 fields: dict[str, Any] | None = None,
                 fields_per_page: int = 1,
                 pageable: bool = False, n_pages: int = 8) -> None:
        if pageable and fields:
            raise SegmentError(
                "a segment is either enumerated (dsm_fields) or pageable, "
                "not both")
        self.segment_id = segment_id
        self.home = home
        self.page_size = page_size
        self.pageable = pageable
        self._field_page: dict[str, int] = {}
        if pageable:
            if n_pages < 1:
                raise SegmentError("pageable segment needs >= 1 page")
            self.pages = [Page(i, page_size) for i in range(n_pages)]
        else:
            fields = dict(fields or {})
            if not fields:
                raise SegmentError(
                    "enumerated segment needs at least one field "
                    "(declare dsm_fields on the class)")
            n_pages = max(1, -(-len(fields) // fields_per_page))
            self.pages = [Page(i, page_size) for i in range(n_pages)]
            for index, (name, default) in enumerate(fields.items()):
                page = self.pages[index // fields_per_page]
                page.values[name] = default
                self._field_page[name] = page.page_id
            for page in self.pages:
                page.materialized = True

    @property
    def n_pages(self) -> int:
        return len(self.pages)

    def page_of(self, field: str) -> Page:
        """The page holding ``field``."""
        if self.pageable:
            # Stable hash (Python's str hash is salted per process).
            index = sum(field.encode("utf-8")) % len(self.pages)
            return self.pages[index]
        page_id = self._field_page.get(field)
        if page_id is None:
            raise SegmentError(
                f"segment {self.segment_id} has no field {field!r}; "
                f"declare it in dsm_fields")
        return self.pages[page_id]

    def page(self, page_id: int) -> Page:
        if not 0 <= page_id < len(self.pages):
            raise SegmentError(
                f"segment {self.segment_id} has no page {page_id}")
        return self.pages[page_id]

    def fields(self) -> list[str]:
        if self.pageable:
            collected: set[str] = set()
            for page in self.pages:
                collected.update(page.values)
                for copy in page.private_copies.values():
                    collected.update(copy)
            return sorted(collected)
        return sorted(self._field_page)
