"""Per-page coherence directory.

Each segment's home node runs a directory entry per page, implementing a
classic MSI invalidation protocol that yields sequential consistency:
at any instant a page is either unowned, read-shared by a set of nodes,
or write-exclusive at one node. Requests against a page are serialised —
one transaction at a time — through a FIFO queue.
"""

from __future__ import annotations

from collections import deque
from typing import Callable

from repro.errors import CoherenceError

ST_IDLE = "idle"
ST_SHARED = "shared"
ST_EXCLUSIVE = "exclusive"


class DirectoryEntry:
    """Coherence bookkeeping for one page of one segment."""

    def __init__(self, segment_id: int, page_id: int) -> None:
        self.segment_id = segment_id
        self.page_id = page_id
        self.state = ST_IDLE
        self.sharers: set[int] = set()
        self.owner: int | None = None
        self._busy = False
        self._queue: deque[Callable[[], None]] = deque()
        #: protocol statistics for the benchmarks
        self.read_misses = 0
        self.write_misses = 0
        self.invalidations = 0

    # ------------------------------------------------------------------
    # transaction serialisation
    # ------------------------------------------------------------------

    def submit(self, transaction: Callable[[], None]) -> None:
        """Run ``transaction`` when the page is free; FIFO order."""
        self._queue.append(transaction)
        self._pump()

    def _pump(self) -> None:
        if self._busy or not self._queue:
            return
        self._busy = True
        transaction = self._queue.popleft()
        transaction()

    def complete(self) -> None:
        """The current transaction finished; start the next one."""
        if not self._busy:
            raise CoherenceError(
                f"page {self.segment_id}/{self.page_id}: complete() "
                f"without an active transaction")
        self._busy = False
        self._pump()

    # ------------------------------------------------------------------
    # state transitions (called inside transactions)
    # ------------------------------------------------------------------

    def grant_read(self, node: int) -> None:
        if self.state == ST_EXCLUSIVE:
            raise CoherenceError(
                f"page {self.segment_id}/{self.page_id}: read grant while "
                f"exclusive at {self.owner}")
        self.sharers.add(node)
        self.state = ST_SHARED
        self.owner = None

    def grant_write(self, node: int) -> None:
        others = (self.sharers - {node}) if self.state == ST_SHARED else set()
        if others or (self.state == ST_EXCLUSIVE and self.owner != node):
            raise CoherenceError(
                f"page {self.segment_id}/{self.page_id}: write grant to "
                f"{node} while copies exist elsewhere")
        self.sharers = {node}
        self.owner = node
        self.state = ST_EXCLUSIVE

    def drop_node(self, node: int) -> None:
        """A node's copy was invalidated or written back."""
        self.sharers.discard(node)
        if self.owner == node:
            self.owner = None
        if not self.sharers:
            self.state = ST_IDLE
        elif self.state == ST_EXCLUSIVE:
            self.state = ST_SHARED

    def holders_to_invalidate(self, for_node: int) -> set[int]:
        """Copies that must be invalidated before ``for_node`` may write."""
        return set(self.sharers) - {for_node}

    def exclusive_elsewhere(self, node: int) -> int | None:
        """Owner that must yield before ``node`` may read, or None."""
        if self.state == ST_EXCLUSIVE and self.owner != node:
            return self.owner
        return None

    def mode_of(self, node: int) -> str:
        from repro.dsm.page import MODE_NONE, MODE_READ, MODE_WRITE

        if self.state == ST_EXCLUSIVE and self.owner == node:
            return MODE_WRITE
        if node in self.sharers:
            return MODE_READ
        return MODE_NONE
