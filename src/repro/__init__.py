"""repro: asynchronous event handling in distributed object-based systems.

A full reproduction of Menon, Dasgupta & LeBlanc (ICDCS 1993): a simulated
Clouds-style DO/CT environment — passive persistent objects, logical
threads spanning nodes, RPC and DSM invocation transports — carrying the
paper's contribution, a general-purpose asynchronous event facility with
thread-based handler chains, object-based handlers and pluggable thread
location.

Quickstart::

    from repro import Cluster, ClusterConfig, DistObject, entry

    class Hello(DistObject):
        @entry
        def greet(self, ctx, who):
            yield ctx.compute(1e-4)
            return f"hello {who}"

    cluster = Cluster(ClusterConfig(n_nodes=2))
    cap = cluster.create_object(Hello, node=1)
    thread = cluster.spawn(cap, "greet", "world")
    cluster.run()
    print(thread.completion.result())
"""

from repro.errors import ReproError
from repro.events import Decision, EventBlock, HandlerContext, names as events
from repro.kernel import (
    ClusterConfig,
    LOCATE_BROADCAST,
    LOCATE_CACHED,
    LOCATE_MULTICAST,
    LOCATE_PATH,
    OBJ_EVENTS_MASTER,
    OBJ_EVENTS_PER_EVENT,
    TRANSPORT_DSM,
    TRANSPORT_RPC,
)
from repro.kernel.boot import Cluster
from repro.objects import Capability, DistObject, entry, handler_entry, on_event
from repro.threads import GroupId, IoChannel, ThreadId

__version__ = "1.0.0"

__all__ = [
    "Capability",
    "Cluster",
    "ClusterConfig",
    "Decision",
    "DistObject",
    "EventBlock",
    "GroupId",
    "HandlerContext",
    "IoChannel",
    "LOCATE_BROADCAST",
    "LOCATE_CACHED",
    "LOCATE_MULTICAST",
    "LOCATE_PATH",
    "OBJ_EVENTS_MASTER",
    "OBJ_EVENTS_PER_EVENT",
    "ReproError",
    "TRANSPORT_DSM",
    "TRANSPORT_RPC",
    "ThreadId",
    "entry",
    "events",
    "handler_entry",
    "on_event",
    "__version__",
]
