"""Mach exception-handling baseline (§9, [Black 89]).

Mach posts exceptions to **tasks** and **threads** through exception
ports, with a *static* partition of exception types between error
handlers (run in the context of the erring task) and debuggers (run
outside it). The paper's criticisms, which this model reproduces:

* the partition is static — an exception type is either error-handler
  class or debugger class, fixed by the kernel (PLATINUM made it dynamic);
* tasks are **active** objects: every thread belongs to exactly one task,
  so per-application customisation inside a *shared* passive object is
  inexpressible — the task's ports apply to all threads equally;
* ports are machine-local kernel objects: no location-transparent
  delivery to a thread currently executing elsewhere.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable

#: Static kernel partition of exception types ([Black 89] table).
ERROR_CLASS = frozenset({"EXC_ARITHMETIC", "EXC_SOFTWARE", "EXC_EMULATION"})
DEBUG_CLASS = frozenset({"EXC_BREAKPOINT", "EXC_BAD_ACCESS"})

_task_ids = itertools.count(1)


@dataclass
class MachThread:
    name: str
    received: list[str] = field(default_factory=list)
    exception_port: Callable | None = None


class MachTask:
    """An active object: threads belong to it, ports hang off it."""

    def __init__(self, machine: int) -> None:
        self.task_id = next(_task_ids)
        self.machine = machine
        self.threads: list[MachThread] = []
        self.error_port: Callable | None = None
        self.debug_port: Callable | None = None

    def spawn_thread(self, name: str) -> MachThread:
        thread = MachThread(name=name)
        self.threads.append(thread)
        return thread


@dataclass
class MachOutcome:
    delivered: bool
    handled_by: str = ""
    reason: str = ""


class MachExceptionModel:
    """Kernel-side exception routing."""

    def __init__(self) -> None:
        self.tasks: dict[int, MachTask] = {}

    def register(self, task: MachTask) -> MachTask:
        self.tasks[task.task_id] = task
        return task

    def raise_exception(self, task_id: int, thread: MachThread | None,
                        exc_type: str,
                        from_machine: int | None = None) -> MachOutcome:
        task = self.tasks.get(task_id)
        if task is None:
            return MachOutcome(False, reason="no such task")
        if from_machine is not None and from_machine != task.machine:
            return MachOutcome(
                False, reason="exception ports are machine-local")
        if not task.threads:
            return MachOutcome(
                False, reason="a task with no threads raises nothing "
                              "(tasks are active objects)")
        # Thread-level port first, then the statically-partitioned task
        # ports — the paper's point: the partition is fixed by type, not
        # choosable by the application.
        if thread is not None and thread.exception_port is not None:
            thread.received.append(exc_type)
            thread.exception_port(thread, exc_type)
            return MachOutcome(True, handled_by="thread-port")
        if exc_type in ERROR_CLASS:
            port, label = task.error_port, "task-error-port"
        elif exc_type in DEBUG_CLASS:
            port, label = task.debug_port, "task-debug-port"
        else:
            return MachOutcome(False, reason=f"unknown type {exc_type!r}")
        if port is None:
            return MachOutcome(
                False,
                reason=f"no {label} installed (partition is static; the "
                       f"application cannot reroute the class)")
        if thread is not None:
            thread.received.append(exc_type)
        port(thread, exc_type)
        return MachOutcome(True, handled_by=label)

    def per_application_customization(self, task: MachTask) -> MachOutcome:
        """Two unrelated applications sharing one task cannot install
        different handlers: ports are per-task."""
        return MachOutcome(
            False,
            reason="ports are per-task; threads of unrelated applications "
                   "inside one task share the same handlers")
