"""Baseline facilities the paper compares against (§9)."""

from repro.baselines.mach_exceptions import (
    DEBUG_CLASS,
    ERROR_CLASS,
    MachExceptionModel,
    MachTask,
    MachThread,
)
from repro.baselines.scenarios import (
    SCENARIOS,
    ScenarioResult,
    run_all,
    run_doct,
    run_mach,
    run_unix,
    score,
)
from repro.baselines.unix_signals import (
    UnixProcess,
    UnixSignalModel,
    UnixThread,
)

__all__ = [
    "DEBUG_CLASS",
    "ERROR_CLASS",
    "MachExceptionModel",
    "MachTask",
    "MachThread",
    "SCENARIOS",
    "ScenarioResult",
    "UnixProcess",
    "UnixSignalModel",
    "UnixThread",
    "run_all",
    "run_doct",
    "run_mach",
    "run_unix",
    "score",
]
