"""UNIX-signal baseline (§9).

"The UNIX system provides the signal mechanism … The entire design of the
UNIX signal facility is suitable for single threaded applications only.
Distributed programming by using the RPC mechanisms do not handle signals
directly."

This model captures the semantics the paper compares against:

* signals address a **process** (pid), never a thread;
* in a multi-threaded process the kernel picks an *arbitrary* eligible
  thread to run the handler (the OSF/1 "ad hoc solution" of §2);
* one handler table per process — unrelated activities sharing a process
  cannot customise handling per-activity;
* no remote delivery: a signal must originate on the process's machine;
* nothing passive can be signalled: no process, no delivery.

Experiment E8 drives both this model and the paper's facility through the
same scenario matrix and scores who delivers to the intended recipient.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable

from repro.sim.rng import RngRegistry

_pids = itertools.count(1)


@dataclass
class UnixThread:
    """A kernel thread inside a process."""

    name: str
    app: str = "default"
    blocked_signals: set[str] = field(default_factory=set)
    received: list[str] = field(default_factory=list)


class UnixProcess:
    """A process with the classic signal API."""

    def __init__(self, machine: int, app: str = "default") -> None:
        self.pid = next(_pids)
        self.machine = machine
        self.app = app
        self.threads: list[UnixThread] = []
        self.handlers: dict[str, Callable[[UnixThread, str], None]] = {}
        self.default_ignored: set[str] = set()

    def spawn_thread(self, name: str, app: str | None = None) -> UnixThread:
        thread = UnixThread(name=name, app=app or self.app)
        self.threads.append(thread)
        return thread

    def sigaction(self, signal: str,
                  handler: Callable[[UnixThread, str], None]) -> None:
        """Install the (process-wide) handler for a signal."""
        self.handlers[signal] = handler


@dataclass
class DeliveryOutcome:
    """What happened to one signal."""

    delivered: bool
    thread: UnixThread | None = None
    reason: str = ""

    @property
    def correct_for(self) -> Callable[[UnixThread], bool]:
        return lambda intended: (self.delivered
                                 and self.thread is intended)


class UnixSignalModel:
    """The machine-wide signal facility."""

    def __init__(self, seed: int = 0) -> None:
        self._rng = RngRegistry(seed).stream("unix-signals")
        self.processes: dict[int, UnixProcess] = {}

    def register(self, process: UnixProcess) -> UnixProcess:
        self.processes[process.pid] = process
        return process

    def kill(self, pid: int, signal: str,
             from_machine: int | None = None) -> DeliveryOutcome:
        """``kill(pid, sig)``: deliver a signal to a process."""
        process = self.processes.get(pid)
        if process is None:
            return DeliveryOutcome(False, reason="no such process")
        if from_machine is not None and from_machine != process.machine:
            return DeliveryOutcome(
                False, reason="signals do not cross machine boundaries")
        if not process.threads:
            return DeliveryOutcome(
                False, reason="no runnable thread to interrupt "
                              "(passive entities cannot be signalled)")
        handler = process.handlers.get(signal)
        if handler is None and signal in process.default_ignored:
            return DeliveryOutcome(False, reason="ignored by default")
        # The OSF/1 ad-hoc choice: an arbitrary thread whose mask allows
        # the signal runs the handler.
        eligible = [t for t in process.threads
                    if signal not in t.blocked_signals]
        if not eligible:
            return DeliveryOutcome(False, reason="all threads block it")
        victim = self._rng.choice(eligible)
        victim.received.append(signal)
        if handler is not None:
            handler(victim, signal)
        return DeliveryOutcome(True, thread=victim,
                               reason="arbitrary eligible thread chosen")

    def kill_thread(self, pid: int, thread_name: str,
                    signal: str) -> DeliveryOutcome:
        """Classic UNIX has no thread-addressed kill; always fails."""
        return DeliveryOutcome(
            False, reason="UNIX signals address processes, not threads")
