"""The §9 comparison scenario matrix (experiment E8).

Five delivery scenarios the DO/CT environment requires; each facility —
UNIX signals, Mach exception ports, and this paper's design — is driven
through all of them and scored on whether the *intended* recipient runs
the handler.
"""

from __future__ import annotations

from dataclasses import dataclass
from repro import Cluster, ClusterConfig, Decision, DistObject, entry
from repro.baselines.mach_exceptions import MachExceptionModel, MachTask
from repro.baselines.unix_signals import UnixProcess, UnixSignalModel

SCENARIOS = (
    "specific-thread-in-shared-space",
    "passive-object",
    "remote-thread",
    "per-application-customization",
    "group-delivery",
)


@dataclass
class ScenarioResult:
    facility: str
    scenario: str
    correct: bool
    detail: str


# ---------------------------------------------------------------------------
# UNIX signals
# ---------------------------------------------------------------------------

def run_unix(seed: int = 0) -> list[ScenarioResult]:
    results = []
    model = UnixSignalModel(seed=seed)

    # 1. specific thread among many in one address space
    proc = model.register(UnixProcess(machine=0))
    intended = proc.spawn_thread("worker-a", app="app1")
    for i in range(7):
        proc.spawn_thread(f"other-{i}", app="app2")
    proc.sigaction("SIGUSR1", lambda t, s: None)
    outcome = model.kill(proc.pid, "SIGUSR1")
    results.append(ScenarioResult(
        "unix", SCENARIOS[0],
        correct=outcome.delivered and outcome.thread is intended,
        detail=outcome.reason))

    # 2. passive object (no runnable thread)
    passive = model.register(UnixProcess(machine=0))
    passive.sigaction("SIGUSR1", lambda t, s: None)
    outcome = model.kill(passive.pid, "SIGUSR1")
    results.append(ScenarioResult("unix", SCENARIOS[1],
                                  correct=outcome.delivered,
                                  detail=outcome.reason))

    # 3. remote thread (signal from another machine)
    remote = model.register(UnixProcess(machine=1))
    remote.spawn_thread("far")
    remote.sigaction("SIGUSR1", lambda t, s: None)
    outcome = model.kill(remote.pid, "SIGUSR1", from_machine=0)
    results.append(ScenarioResult("unix", SCENARIOS[2],
                                  correct=outcome.delivered,
                                  detail=outcome.reason))

    # 4. per-application customization inside one space: one handler
    # table — the second app's sigaction clobbers the first's.
    shared = model.register(UnixProcess(machine=0))
    shared.spawn_thread("app1-thread", app="app1")
    shared.spawn_thread("app2-thread", app="app2")
    ran = []
    shared.sigaction("SIGUSR2", lambda t, s: ran.append("app1-handler"))
    shared.sigaction("SIGUSR2", lambda t, s: ran.append("app2-handler"))
    model.kill(shared.pid, "SIGUSR2")
    results.append(ScenarioResult(
        "unix", SCENARIOS[3], correct="app1-handler" in ran,
        detail="second sigaction replaced the first"))

    # 5. group delivery: process groups exist, but member selection is
    # still per-process arbitrary-thread; count intended thread hits.
    group = [model.register(UnixProcess(machine=0)) for _ in range(3)]
    hits = 0
    for proc in group:
        intended = proc.spawn_thread("worker", app="app1")
        proc.spawn_thread("bystander", app="app2")
        proc.sigaction("SIGTERM", lambda t, s: None)
        outcome = model.kill(proc.pid, "SIGTERM")
        if outcome.delivered and outcome.thread is intended:
            hits += 1
    results.append(ScenarioResult(
        "unix", SCENARIOS[4], correct=hits == len(group),
        detail=f"{hits}/{len(group)} intended threads hit"))
    return results


# ---------------------------------------------------------------------------
# Mach exception ports
# ---------------------------------------------------------------------------

def run_mach() -> list[ScenarioResult]:
    results = []
    model = MachExceptionModel()

    # 1. specific thread: thread exception ports DO exist in Mach.
    task = model.register(MachTask(machine=0))
    intended = task.spawn_thread("worker-a")
    task.spawn_thread("other")
    intended.exception_port = lambda t, e: None
    outcome = model.raise_exception(task.task_id, intended,
                                    "EXC_ARITHMETIC")
    results.append(ScenarioResult("mach", SCENARIOS[0],
                                  correct=outcome.delivered,
                                  detail=outcome.handled_by))

    # 2. passive object: a task with no threads.
    passive = model.register(MachTask(machine=0))
    passive.error_port = lambda t, e: None
    outcome = model.raise_exception(passive.task_id, None,
                                    "EXC_ARITHMETIC")
    results.append(ScenarioResult("mach", SCENARIOS[1],
                                  correct=outcome.delivered,
                                  detail=outcome.reason))

    # 3. remote thread.
    remote = model.register(MachTask(machine=1))
    thread = remote.spawn_thread("far")
    remote.error_port = lambda t, e: None
    outcome = model.raise_exception(remote.task_id, thread,
                                    "EXC_ARITHMETIC", from_machine=0)
    results.append(ScenarioResult("mach", SCENARIOS[2],
                                  correct=outcome.delivered,
                                  detail=outcome.reason))

    # 4. per-application customization inside one shared task.
    shared = model.register(MachTask(machine=0))
    shared.spawn_thread("app1-thread")
    shared.spawn_thread("app2-thread")
    outcome = model.per_application_customization(shared)
    results.append(ScenarioResult("mach", SCENARIOS[3],
                                  correct=outcome.delivered,
                                  detail=outcome.reason))

    # 5. group delivery: Mach has no exception multicast to task groups.
    results.append(ScenarioResult(
        "mach", SCENARIOS[4], correct=False,
        detail="no group-addressed exception primitive"))
    return results


# ---------------------------------------------------------------------------
# the paper's facility (this library)
# ---------------------------------------------------------------------------

class _SharedObject(DistObject):
    @entry
    def work(self, ctx, label, hits):
        def handler(hctx, block):
            hits.append(label)
            yield hctx.compute(0)
            return Decision.RESUME

        yield ctx.attach_handler("POKE", handler)
        yield ctx.sleep(10.0)
        return label


class _PassiveTarget(DistObject):
    def __init__(self):
        super().__init__()
        self.hits = []

    from repro.objects.base import on_event as _on_event

    @_on_event("POKE")
    def on_poke(self, ctx, block):
        self.hits.append("object-handler")
        yield ctx.compute(0)
        return "poked"


def run_doct(seed: int = 0) -> list[ScenarioResult]:
    results = []
    cluster = Cluster(ClusterConfig(n_nodes=3, seed=seed))
    cluster.register_event("POKE")
    shared = cluster.create_object(_SharedObject, node=1)
    hits: list[str] = []

    # 1 & 4: two unrelated applications' threads in one shared object,
    # each with its own thread-based handler.
    t_app1 = cluster.spawn(shared, "work", "app1", hits, at=0)
    cluster.spawn(shared, "work", "app2", hits, at=2)
    cluster.run(until=0.1)
    cluster.raise_event("POKE", t_app1.tid, from_node=1)
    cluster.run(until=0.5)
    results.append(ScenarioResult(
        "doct", SCENARIOS[0], correct=hits == ["app1"],
        detail=f"handlers run: {hits}"))
    results.append(ScenarioResult(
        "doct", SCENARIOS[3], correct="app2" not in hits,
        detail="unrelated thread in the same object unaffected"))

    # 2: passive object with no thread inside.
    passive = cluster.create_object(_PassiveTarget, node=2)
    future = cluster.raise_and_wait("POKE", passive, from_node=0)
    cluster.run(until=1.0)
    results.insert(1, ScenarioResult(
        "doct", SCENARIOS[1],
        correct=future.done and cluster.get_object(passive).hits ==
        ["object-handler"],
        detail="master handler thread ran the object handler"))

    # 3: remote thread (raise from node 0, thread executing on node 1).
    hits2: list[str] = []
    t_far = cluster.spawn(shared, "work", "far", hits2, at=2)
    cluster.run(until=1.5)
    cluster.raise_event("POKE", t_far.tid, from_node=0)
    cluster.run(until=2.5)
    results.insert(2, ScenarioResult(
        "doct", SCENARIOS[2], correct=hits2 == ["far"],
        detail="located and delivered across nodes"))

    # 5: group delivery.
    hits3: list[str] = []
    gid = cluster.new_group()
    for i in range(3):
        cluster.spawn(shared, "work", f"m{i}", hits3, at=i, group=gid)
    cluster.run(until=3.0)
    cluster.raise_event("POKE", gid, from_node=0)
    cluster.run(until=4.0)
    results.append(ScenarioResult(
        "doct", SCENARIOS[4], correct=sorted(hits3) == ["m0", "m1", "m2"],
        detail=f"members hit: {sorted(hits3)}"))
    results.sort(key=lambda r: SCENARIOS.index(r.scenario))
    return results


def run_all(seed: int = 0) -> dict[str, list[ScenarioResult]]:
    return {"unix": run_unix(seed), "mach": run_mach(),
            "doct": run_doct(seed)}


def score(results: list[ScenarioResult]) -> float:
    return sum(1 for r in results if r.correct) / len(results)
