#!/usr/bin/env python3
"""Quick-mode overload smoke check for CI.

Runs a scaled-down E13 open-loop slice (0.5s arrival window, seconds of
wall-clock): 2x-overload drop-policy runs with control on and off plus a
durable defer run. Asserts the overload-control guarantees — zero posts
silently lost, every shed post noticed, zero durable posts lost with the
outbox drained, bounded p99 against the uncontrolled contrast — checks
same-seed determinism of the deterministic columns, and fails if goodput
at 2x falls below a fraction of the committed ``BENCH_overload.json``
baseline. Goodput here is deterministic (virtual-time executions over
capacity), so ``OVERLOAD_SMOKE_MIN_FRACTION`` (default 0.9) only absorbs
the scaled-down window's edge effects, not runner speed.

Run:  PYTHONPATH=src python benchmarks/smoke_overload.py
"""

import json
import os
import pathlib
import sys
from dataclasses import replace

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

from repro.bench.overload import (  # noqa: E402
    OverloadSpec,
    deterministic_view,
    run_overload,
)

SMOKE_DURATION = 0.5


def main() -> None:
    baseline_path = REPO_ROOT / "BENCH_overload.json"
    baseline = json.loads(baseline_path.read_text(encoding="utf-8"))
    base_goodput = baseline["knee"]["x2.0"]["on"]["goodput_frac"]
    min_fraction = float(os.environ.get("OVERLOAD_SMOKE_MIN_FRACTION",
                                        "0.9"))
    floor = base_goodput * min_fraction

    spec = OverloadSpec(duration=SMOKE_DURATION, offered_x=2.0,
                        policy="drop")
    on = run_overload(spec, control=True)
    off = run_overload(spec, control=False)

    # Zero silent losses, every shed post noticed (run_overload already
    # asserts per-post accounting; re-check the headline counters).
    assert on["lost"] == 0 and off["lost"] == 0, (on, off)
    assert on["shed_dropped"] > 0, on
    assert on["notices"] >= on["shed_dropped"], on
    # Bounded p99: the admission watermark caps queueing where the
    # uncontrolled run's tail grows with the arrival window.
    assert on["p99_latency"] <= 0.5 * off["p99_latency"], (on, off)
    # Goodput at 2x overload holds against the committed baseline.
    assert on["goodput_frac"] >= floor, (
        f"goodput regression: {on['goodput_frac']} below "
        f"{min_fraction:.0%} of the committed baseline {base_goodput} "
        f"(floor {floor:.4f})")

    # Durable defer: every post deferred-then-executed, none lost
    # (run_overload asserts the outbox drained and lost == 0).
    defer = run_overload(replace(spec, policy="defer", durable=True),
                         control=True)
    assert defer["shed_deferred"] > 0, defer
    assert defer["executed"] == defer["offered_posts"], defer

    # Same-seed determinism: every column but wall-clock bit-identical.
    again = run_overload(spec, control=True)
    assert deterministic_view(on) == deterministic_view(again), \
        "same-seed overload runs not deterministic"

    print(f"smoke OK: {on['offered_posts']} posts at 2x, goodput "
          f"{on['goodput_frac']} >= floor {floor:.4f}, p99 "
          f"{on['p99_latency']}s vs uncontrolled {off['p99_latency']}s, "
          f"{on['shed_dropped']} shed all noticed, "
          f"{defer['shed_deferred']} durable posts deferred and drained; "
          "deterministic columns bit-identical across same-seed runs")


if __name__ == "__main__":
    sys.exit(main())
