"""E2: cost of locating a migrating thread under the three §7.1 strategies."""

from repro.bench.experiments import run_e2


def _rows(table):
    return [dict(zip(table.columns, row)) for row in table.rows]


def test_e2_locate_strategies(benchmark, record):
    table = benchmark.pedantic(
        run_e2, kwargs={"cluster_sizes": (2, 4, 8, 16, 32),
                        "depths": (1, 4), "posts": 10},
        rounds=1, iterations=1)
    record("e2_locate", table)
    rows = _rows(table)

    def msgs(locator, nodes, depth):
        for row in rows:
            if (row["locator"], row["nodes"],
                    row["migration depth"]) == (locator, nodes, depth):
                return row["msgs/post"]
        raise AssertionError(f"missing row {locator}/{nodes}/{depth}")

    # Broadcast grows with cluster size at fixed depth — "communication
    # intensive and wasteful".
    assert msgs("broadcast", 32, 1) > msgs("broadcast", 8, 1) > \
        msgs("broadcast", 2, 1)
    # Path-following is independent of cluster size, linear in depth.
    assert msgs("path", 8, 1) == msgs("path", 32, 1)
    assert msgs("path", 32, 4) > msgs("path", 32, 1)
    # Path never exceeds n hops (the paper's bound).
    for row in rows:
        if row["locator"] == "path":
            assert row["msgs/post"] <= row["nodes"]
    # Multicast is bounded by group membership, not cluster size, and
    # beats broadcast in large clusters.
    assert msgs("multicast", 32, 1) == msgs("multicast", 8, 1)
    assert msgs("multicast", 32, 1) < msgs("broadcast", 32, 1)
    # Latency: path pays per-hop, broadcast/multicast one round trip.
    for row in rows:
        if row["locator"] == "path" and row["migration depth"] == 4:
            assert row["latency/post (ms)"] > 3.0
        if row["locator"] == "broadcast":
            assert row["latency/post (ms)"] < 2.0
