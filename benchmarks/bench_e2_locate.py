"""E2: cost of locating a migrating thread — the three §7.1 strategies
plus the hint-cached fourth locator (``locator="cached"``)."""

import pathlib

from repro.bench.experiments import run_e2
from repro.bench.harness import emit_json

REPO_ROOT = pathlib.Path(__file__).parent.parent


def _rows(table):
    return [dict(zip(table.columns, row)) for row in table.rows]


def assert_e2_shape(table):
    """The paper's cost curves plus the cached locator's amortised win.

    Shared with the CI smoke runner (``benchmarks/smoke_e2.py``), which
    calls it on a reduced sweep.
    """
    rows = _rows(table)
    sizes = sorted({row["nodes"] for row in rows})
    depths = sorted({row["migration depth"] for row in rows
                     if row["locator"] == "path"})

    def msgs(locator, nodes, depth):
        for row in rows:
            if (row["locator"], row["nodes"],
                    row["migration depth"]) == (locator, nodes, depth):
                return row["msgs/post"]
        raise AssertionError(f"missing row {locator}/{nodes}/{depth}")

    def latency(locator, nodes, depth):
        for row in rows:
            if (row["locator"], row["nodes"],
                    row["migration depth"]) == (locator, nodes, depth):
                return row["latency/post (ms)"]
        raise AssertionError(f"missing row {locator}/{nodes}/{depth}")

    big, small = sizes[-1], sizes[0]
    mid = sizes[len(sizes) // 2]
    deep = depths[-1]
    # Broadcast grows with cluster size at fixed depth — "communication
    # intensive and wasteful".
    assert msgs("broadcast", big, 1) > msgs("broadcast", small, 1)
    # Path-following is independent of cluster size, linear in depth.
    assert msgs("path", mid, 1) == msgs("path", big, 1)
    if deep > 1:
        assert msgs("path", big, deep) > msgs("path", big, 1)
    # Path never exceeds n hops (the paper's bound).
    for row in rows:
        if row["locator"] == "path":
            assert row["msgs/post"] <= row["nodes"]
    # Multicast is bounded by group membership, not cluster size, and
    # beats broadcast in large clusters.
    assert msgs("multicast", big, 1) == msgs("multicast", mid, 1)
    assert msgs("multicast", big, 1) < msgs("broadcast", big, 1)
    # Latency: path pays per-hop, broadcast/multicast one round trip.
    for row in rows:
        if row["locator"] == "path" and row["migration depth"] == 4:
            assert row["latency/post (ms)"] > 3.0
        if row["locator"] == "broadcast":
            assert row["latency/post (ms)"] < 2.0
    # --- the fourth locator -------------------------------------------
    for n in sizes:
        for depth in depths:
            if depth >= n:
                continue
            # Hot cache: steady-state posts cost exactly one direct
            # message and one network latency, regardless of cluster
            # size and migration depth.
            assert msgs("cached (hot)", n, depth) == 1.0
            assert latency("cached (hot)", n, depth) < 1.1
            # ... strictly beating broadcast and multicast at 8+ nodes,
            # and never worse than path.
            if n >= 8:
                assert msgs("cached (hot)", n, depth) < \
                    msgs("broadcast", n, depth)
                assert msgs("cached (hot)", n, depth) < \
                    msgs("multicast", n, depth)
            assert msgs("cached (hot)", n, depth) <= msgs("path", n, depth)
            # Cold cache: the very first post pays exactly the fallback
            # strategy's price (cache_fallback=path), nothing extra.
            assert msgs("cached (cold)", n, depth) == msgs("path", n, depth)
    # Migrating target: stale hints chase TCB forwarding pointers; the
    # post still delivers (asserted inside run_e2) and stays cheaper
    # than a broadcast.
    for row in rows:
        if row["locator"] == "cached (migrating)":
            if row["nodes"] >= 8:
                assert row["msgs/post"] < msgs("broadcast", row["nodes"], 1)


def test_e2_locate_strategies(benchmark, record):
    table = benchmark.pedantic(
        run_e2, kwargs={"cluster_sizes": (2, 4, 8, 16, 32),
                        "depths": (1, 4), "posts": 10},
        rounds=1, iterations=1)
    record("e2_locate", table)
    emit_json(table, REPO_ROOT / "BENCH_locate.json", experiment="e2_locate",
              cluster_sizes=[2, 4, 8, 16, 32], depths=[1, 4], posts=10)
    assert_e2_shape(table)
