#!/usr/bin/env python3
"""Quick-mode handler-supervision smoke check for CI.

Runs the E11 sweep (seconds), asserts the supervision guarantees —
every chaos post executed once, noticed, or quarantined with zero
wedged handlers under injected hang/raise/poison faults; durable posts
exactly-once-or-quarantined; buddy-breaker delivery totals identical
on/off with the supervised mean stall at most half the bare one — plus
same-seed determinism, and emits ``BENCH_supervise.json`` at the repo
root.

Run:  PYTHONPATH=src python benchmarks/smoke_supervise.py
"""

import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).parent))

from bench_e11_supervise import (  # noqa: E402
    REPO_ROOT,
    assert_supervise_shape,
)
from repro.bench.harness import emit_json  # noqa: E402
from repro.bench.supervise import (  # noqa: E402
    SuperviseSpec,
    deterministic_view,
    run_handler_faults,
    run_supervise_sweep,
)


def main() -> None:
    spec = SuperviseSpec(seed=7, posts=60, buddy_posts=40)
    table, results = run_supervise_sweep(spec)
    assert_supervise_shape(results)
    probe = SuperviseSpec(seed=19, posts=40)
    first = deterministic_view(run_handler_faults(probe, supervised=True,
                                                  durable=True))
    again = deterministic_view(run_handler_faults(probe, supervised=True,
                                                  durable=True))
    assert first == again, "same-seed supervised runs must be bit-identical"
    emit_json(table, REPO_ROOT / "BENCH_supervise.json",
              experiment="supervise", seed=spec.seed, posts=spec.posts,
              buddy_posts=spec.buddy_posts, hang_rate=spec.hang_rate,
              raise_rate=spec.raise_rate, poison_rate=spec.poison_rate,
              drop_rate=spec.drop_rate, crash_period=spec.crash_period,
              quick=True,
              results={w: {m: deterministic_view(r)
                           for m, r in modes.items()}
                       for w, modes in results.items()})
    print(table.render())
    faults = results["handler-faults"]
    buddy = results["buddy-breaker"]
    print(f"\nsmoke OK: accounted {faults['off']['accounted_rate']} -> "
          f"{faults['on']['accounted_rate']}, hung "
          f"{faults['off']['hung_handlers']} -> "
          f"{faults['on']['hung_handlers']}; buddy mean stall "
          f"{buddy['off']['mean_latency']}s -> "
          f"{buddy['on']['mean_latency']}s; same-seed runs bit-identical")


if __name__ == "__main__":
    main()
