"""E6: user-level VM manager — external pager throughput (§6.4)."""

from repro.bench.experiments import run_e6


def test_e6_external_pager(benchmark, record):
    table = benchmark.pedantic(
        run_e6, kwargs={"faulter_counts": (1, 2, 4, 8), "n_nodes": 8},
        rounds=1, iterations=1)
    record("e6_pager", table)
    rows = [dict(zip(table.columns, row)) for row in table.rows]
    for row in rows:
        # every fault was served by the user-level pager
        assert row["faults served"] == row["vm faults"]
        assert row["vm faults"] > 0
    shared = {row["faulters"]: row for row in rows
              if row["mode"] == "shared"}
    private = {row["faulters"]: row for row in rows
               if row["mode"] == "private-copy"}
    # private-copy mode faults once per (page, node): more pager work ...
    assert private[8]["faults served"] >= shared[8]["faults served"]
    # ... then reconciles by merging
    assert private[8]["merged pages"] >= 1
    assert all(row["merged pages"] == 0 for row in shared.values())
    # fault volume grows with concurrency
    assert shared[8]["vm faults"] >= shared[1]["vm faults"]
