#!/usr/bin/env python3
"""Quick-mode chaos smoke check for CI.

Runs a reduced drop-rate sweep with periodic crash/recover (seconds, not
minutes), asserts the reliability guarantees — exactly-once handler
execution, zero lost-or-hung posts, determinism — and emits the
machine-readable ``BENCH_chaos.json`` at the repo root.

Run:  PYTHONPATH=src python benchmarks/smoke_chaos.py
"""

import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).parent))

from bench_chaos import REPO_ROOT, assert_chaos_shape  # noqa: E402
from repro.bench.chaos import ChaosSpec, run_chaos, run_chaos_sweep  # noqa: E402
from repro.bench.harness import emit_json  # noqa: E402

DROP_RATES = [0.0, 0.1, 0.2]
LOCATORS = ["path", "cached"]


def main() -> None:
    base = ChaosSpec(seed=11, posts=60, duplicate_rate=0.05,
                     crash_period=0.8, down_time=0.5)
    table, reports = run_chaos_sweep(DROP_RATES, LOCATORS, base)
    assert_chaos_shape(table, reports)
    spec = ChaosSpec(seed=23, locator="cached", posts=40, drop_rate=0.1)
    assert run_chaos(spec).digest == run_chaos(spec).digest, \
        "same-seed chaos runs must be bit-identical"
    emit_json(table, REPO_ROOT / "BENCH_chaos.json", experiment="chaos",
              drop_rates=DROP_RATES, locators=LOCATORS, seed=base.seed,
              posts=base.posts, n_nodes=base.n_nodes,
              crash_period=base.crash_period,
              duplicate_rate=base.duplicate_rate, quick=True,
              digests=[r.digest for r in reports])
    print(table.render())
    print("\nsmoke OK: every post executed exactly once or surfaced a "
          "notice; same-seed runs bit-identical")


if __name__ == "__main__":
    main()
