"""E9: raiser blocking semantics — raise vs raise_and_wait (§3, §5.3)."""

from repro.bench.experiments import run_e9


def test_e9_sync_vs_async(benchmark, record):
    table = benchmark.pedantic(
        run_e9, kwargs={"service_times": (0.0, 1e-3, 1e-2, 1e-1)},
        rounds=1, iterations=1)
    record("e9_sync_async", table)
    rows = [dict(zip(table.columns, row)) for row in table.rows]
    for row in rows:
        # asynchronous raising never blocks the raiser
        assert row["async window (ms)"] == 0.0
        # synchronous raising blocks at least for locate+deliver+resume
        assert row["sync window (ms)"] > 1.0
    # the sync window tracks the handler's service time one-for-one
    windows = {row["handler service time (ms)"]: row["sync window (ms)"]
               for row in rows}
    assert windows[100.0] - windows[0.0] == \
        __import__("pytest").approx(100.0, rel=0.05)
