"""E8: correct-recipient delivery — UNIX signals vs Mach vs this design."""

from repro.bench.experiments import run_e8


def test_e8_facility_comparison(benchmark, record):
    table = benchmark.pedantic(run_e8, kwargs={"seeds": range(20)},
                               rounds=1, iterations=1)
    record("e8_baselines", table)
    rows = {row[0]: dict(zip(table.columns[1:], row[1:]))
            for row in table.rows}

    def pct(cell):
        return int(cell.rstrip("%"))

    overall = rows["OVERALL"]
    # the paper's design handles every scenario; the baselines do not
    assert pct(overall["doct"]) == 100
    assert pct(overall["unix"]) < 40
    assert pct(overall["mach"]) < 60
    # specific claims from §9
    assert pct(rows["passive-object"]["unix"]) == 0
    assert pct(rows["passive-object"]["mach"]) == 0
    assert pct(rows["remote-thread"]["unix"]) == 0
    assert pct(rows["remote-thread"]["mach"]) == 0
    assert pct(rows["per-application-customization"]["unix"]) == 0
    assert pct(rows["per-application-customization"]["mach"]) == 0
    # Mach thread-ports DO handle in-task thread targeting
    assert pct(rows["specific-thread-in-shared-space"]["mach"]) == 100
    # UNIX hits the right thread only by luck (~1/8 here)
    assert 0 < pct(rows["specific-thread-in-shared-space"]["unix"]) < 50
