"""E10: transport fast path — coalesced/piggybacked acks, per-peer
retransmit timers, journal group-commit, scheduler heap compaction.

Runs the three E10 workloads (burst, bidir, durable-fanout) with the
fast path on and off, asserts the envelope/commit savings and the
semantics-preservation guarantees, and emits ``BENCH_fastpath.json`` at
the repo root.
"""

import pathlib

from repro.bench.fastpath import (
    FastpathSpec,
    deterministic_view,
    run_burst,
    run_fastpath_sweep,
)
from repro.bench.harness import emit_json

REPO_ROOT = pathlib.Path(__file__).parent.parent


def assert_fastpath_shape(results):
    """The E10 acceptance bars, checked by bench and CI smoke alike."""
    burst_on = results["burst"]["on"]
    burst_off = results["burst"]["off"]
    # Coalescing: one cumulative ack per burst retires the whole burst.
    assert burst_on["acks_per_post"] <= 0.5 * burst_off["acks_per_post"], \
        (burst_on, burst_off)
    # Total wire traffic down at least 25% at drop=0.
    assert burst_on["msgs_per_post"] <= 0.75 * burst_off["msgs_per_post"], \
        (burst_on, burst_off)
    # The ack window must not trigger spurious retransmissions.
    assert burst_on["retransmits"] == 0, burst_on
    # Strictly fewer dedicated ack envelopes with coalescing on.
    assert burst_on["acks_sent"] < burst_off["acks_sent"]
    # Piggybacking: reverse data traffic carries acks for free.
    bidir_on = results["bidir"]["on"]
    assert bidir_on["acks_piggybacked"] > 0, bidir_on
    assert results["bidir"]["off"]["acks_piggybacked"] == 0
    # Group-commit: same journal appends, fewer commit units.
    fan_on = results["durable-fanout"]["on"]
    fan_off = results["durable-fanout"]["off"]
    assert fan_on["journal_appends"] == fan_off["journal_appends"], \
        (fan_on, fan_off)
    assert fan_on["journal_commits"] < fan_off["journal_commits"], \
        (fan_on, fan_off)
    assert fan_on["outbox_pending"] == fan_off["outbox_pending"] == 0
    # The per-post simulator work must not regress with the fast path on.
    for workload, modes in results.items():
        assert (modes["on"]["sim_events_per_post"]
                <= modes["off"]["sim_events_per_post"]), workload


def test_e10_fastpath(benchmark, record):
    spec = FastpathSpec(seed=5, posts=400, burst=4)
    result = {}

    def run():
        table, results = run_fastpath_sweep(spec)
        result["table"], result["results"] = table, results
        return table

    benchmark.pedantic(run, rounds=1, iterations=1)
    table, results = result["table"], result["results"]
    record("e10_fastpath", table)
    emit_json(table, REPO_ROOT / "BENCH_fastpath.json",
              experiment="fastpath", seed=spec.seed, posts=spec.posts,
              burst=spec.burst, group_size=spec.group_size,
              gap=spec.gap, link_latency=spec.link_latency,
              results={w: {m: deterministic_view(r)
                           for m, r in modes.items()}
                       for w, modes in results.items()})
    assert_fastpath_shape(results)


def test_e10_deterministic(benchmark):
    spec = FastpathSpec(seed=31, posts=120, burst=4)

    def run():
        return deterministic_view(run_burst(spec, fastpath=True,
                                            bidirectional=True))

    first = benchmark.pedantic(run, rounds=1, iterations=1)
    assert first == deterministic_view(
        run_burst(spec, fastpath=True, bidirectional=True)), \
        "same-seed fast-path runs must be bit-identical"
