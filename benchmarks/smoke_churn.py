#!/usr/bin/env python3
"""Quick-mode churn/membership smoke check for CI.

Asserts the SWIM membership guarantees in a few seconds of wall-clock:

* a seeded churn chaos run (drops + scheduled leave/crash/rejoin with
  gossip membership on) accounts for every post — executed exactly
  once, noticed, or quarantined — on both the heap and timing-wheel
  scheduler backends, with bit-identical digests across backends and
  across same-seed repeats;
* a small sharded churn run loses zero posts and every stable node's
  view converges (no suspects, no deads) once churn ends;
* the scaling shape holds: SWIM's per-node failure-detection load is
  flat as the cluster grows while the all-pairs heartbeat's grows
  with n;
* the acceptance-size (64-node) churn run's message throughput stays
  within ``CHURN_SMOKE_MIN_FRACTION`` (default 0.5) of the committed
  ``BENCH_membership.json`` baseline, so a hot-path regression in the
  membership layer fails CI instead of landing silently.

Run:  PYTHONPATH=src python benchmarks/smoke_churn.py
"""

import json
import os
import pathlib
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

from repro.bench.membership import (  # noqa: E402
    check_scaling,
    run_churn_row,
    run_churn_sharded,
    run_detection_row,
)


def main() -> None:
    # -- churn invariant, heap vs wheel differential -------------------
    heap = run_churn_row(16, scheduler="heap")
    wheel = run_churn_row(16, scheduler="wheel")
    assert heap["accounted"] == 1.0, heap
    assert wheel["accounted"] == 1.0, wheel
    assert heap["digest"] == wheel["digest"], (
        "heap vs wheel churn digests diverged: "
        f"{heap['digest'][:16]} != {wheel['digest'][:16]}")
    again = run_churn_row(16, scheduler="heap")
    assert heap["digest"] == again["digest"], \
        "same-seed churn runs must be bit-identical"
    assert heap["churn_events"] > 0 and heap["rejoins"] > 0, heap

    # -- sharded churn: zero losses, converged views -------------------
    sharded = run_churn_sharded(16, 2)
    assert sharded["executed"] == sharded["raised"], sharded
    assert sharded["converged"], sharded
    assert sharded["cross_shard"] > 0, "churn run never crossed a shard"

    # -- O(1) vs O(n) failure-detection load ---------------------------
    detection = [run_detection_row(n, "swim") for n in (4, 32)]
    detection += [run_detection_row(n, "heartbeat") for n in (4, 16)]
    check_scaling(detection)

    # -- throughput regression floor vs the committed baseline ---------
    baseline_path = REPO_ROOT / "BENCH_membership.json"
    baseline = json.loads(baseline_path.read_text(encoding="utf-8"))
    base_row = next(r for r in baseline["rows"]["churn"]
                    if r["nodes"] == 64 and r["scheduler"] == "heap")
    min_fraction = float(os.environ.get("CHURN_SMOKE_MIN_FRACTION", "0.5"))
    floor = base_row["msgs_per_sec"] * min_fraction
    row = run_churn_row(64)
    assert row["digest"] == base_row["digest"], (
        "64-node churn digest drifted from the committed baseline: "
        f"{row['digest'][:16]} != {base_row['digest'][:16]}")
    assert row["msgs_per_sec"] >= floor, (
        f"churn throughput regression: {row['msgs_per_sec']:.0f} msgs/s "
        f"is below {min_fraction:.0%} of the committed baseline "
        f"{base_row['msgs_per_sec']:.0f} msgs/s (floor {floor:.0f})")

    print(f"\nsmoke OK: churn accounted=1.0 on heap+wheel "
          f"(digest {heap['digest'][:12]}, identical), sharded 16n/2s "
          f"converged with {sharded['executed']}/{sharded['raised']} "
          f"posts, swim load flat vs heartbeat O(n), 64-node churn "
          f"{row['msgs_per_sec']:.0f} msgs/s >= {min_fraction:.0%} of "
          f"baseline {base_row['msgs_per_sec']:.0f}")


if __name__ == "__main__":
    sys.exit(main())
