"""E14: scale-out runtime — posts/s and locator cost vs node count.

Runs the E14 sweep (single-process sim rows 4..128 nodes, sharded
multi-process rows with conservative windows, §7.1 locator-cost rows,
and a TCP loopback smoke), asserts the scale acceptance bars — zero
lost posts on every backend, seed-reproducible sharded digests at 64+
nodes, broadcast locate cost growing with n while path/cached stay
O(1) — and emits ``BENCH_scale.json`` at the repo root.
"""

import pathlib

from repro.bench.harness import emit_json
from repro.bench.scale import ScaleSpec, run_e14, run_scale_sharded

REPO_ROOT = pathlib.Path(__file__).parent.parent


def test_e14_scale(benchmark, record):
    result = {}

    def run():
        table, rows = run_e14()
        result["table"], result["rows"] = table, rows
        return table

    benchmark.pedantic(run, rounds=1, iterations=1)
    table, rows = result["table"], result["rows"]
    record("e14_scale", table)
    emit_json(table, REPO_ROOT / "BENCH_scale.json",
              experiment="e14-scale", quick=False, rows=rows)

    # zero losses on every backend (run_e14 asserts per-row; re-check)
    for row in rows["sim"] + rows["sharded"]:
        assert row["executed"] == row["raised"], row
    assert rows["tcp"]["executed"] == rows["tcp"]["raised"], rows["tcp"]
    # the sweep must actually reach 128 nodes on both sim backends
    assert max(r["nodes"] for r in rows["sim"]) >= 128
    assert max(r["nodes"] for r in rows["sharded"]) >= 128
    # §7.1 shape: broadcast locate cost grows with n, path/cached do not
    by_locator = {}
    for row in rows["locator"]:
        by_locator.setdefault(row["locator"], []).append(row)
    bcast = sorted(by_locator["broadcast"], key=lambda r: r["nodes"])
    assert bcast[-1]["locate_msgs_per_post"] > \
        bcast[0]["locate_msgs_per_post"]
    for flat in ("path", "cached"):
        series = by_locator[flat]
        costs = [r["locate_msgs_per_post"] for r in series]
        assert max(costs) - min(costs) <= 2.0, (flat, series)


def test_e14_sharded_deterministic_64_nodes(benchmark):
    """The acceptance bar: a seed-reproducible 64+ node sharded bench."""
    spec = ScaleSpec(n_nodes=64, shard_count=4, posts_per_node=50)

    def run():
        return run_scale_sharded(spec)

    first = benchmark.pedantic(run, rounds=1, iterations=1)
    second = run_scale_sharded(spec)
    assert first["digest"] == second["digest"], \
        "same-seed 64-node sharded runs must be bit-identical"
    assert first["executed"] == first["raised"] == spec.total_posts
    assert first["cross_shard"] > 0, "workload never crossed a shard"
