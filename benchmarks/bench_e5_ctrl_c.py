"""E5: the distributed ^C problem (§6.3) at increasing scale."""

from repro.bench.experiments import run_e5


def test_e5_distributed_ctrl_c(benchmark, record):
    table = benchmark.pedantic(
        run_e5, kwargs={"worker_counts": (2, 4, 8, 16), "n_nodes": 8},
        rounds=1, iterations=1)
    record("e5_ctrl_c", table)
    rows = [dict(zip(table.columns, row)) for row in table.rows]
    for row in rows:
        # the whole point: nothing survives, nothing leaks, nothing is
        # orphaned
        assert row["survivors"] == 0
        assert row["orphans"] == 0
        assert row["locks leaked"] == 0
        assert row["objects ABORT-notified"] >= 1
        # group = workers + root
        assert row["group size"] == row["workers"] + 1
    # message cost scales with the number of threads to hunt down
    msgs = {row["workers"]: row["messages"] for row in rows}
    assert msgs[16] > msgs[4] > msgs[2]
    # but the time to quiescence stays flat: members terminate in parallel
    times = [row["time to quiescence (ms)"] for row in rows]
    assert max(times) < 2 * min(times)
