"""E16: SWIM gossip membership — detection latency and load vs size.

Runs the E16 sweep (detection rows for SWIM at 4..256 nodes vs the
all-pairs heartbeat at 4..64, a 10%-correlated-failure convergence row,
churn chaos rows at 64/128 nodes on the sim backend, and sharded churn
rows at 64/4 and 128/8), asserts the membership acceptance bars — SWIM
per-node detection load flat while the heartbeat's grows O(n), every
churned post executed-once/noticed/quarantined, sharded views converged
with zero lost posts — and emits ``BENCH_membership.json``.
"""

import pathlib

from repro.bench.harness import emit_json
from repro.bench.membership import run_churn_row, run_e16

REPO_ROOT = pathlib.Path(__file__).parent.parent


def test_e16_membership(benchmark, record):
    result = {}

    def run():
        table, rows = run_e16()
        result["table"], result["rows"] = table, rows
        return table

    benchmark.pedantic(run, rounds=1, iterations=1)
    table, rows = result["table"], result["rows"]
    record("e16_membership", table)
    emit_json(table, REPO_ROOT / "BENCH_membership.json",
              experiment="e16-membership", quick=False, rows=rows)

    # the sweep reaches the acceptance sizes on both backends
    swim = [r for r in rows["detection"] if r["mode"] == "swim"]
    assert max(r["nodes"] for r in swim) >= 256
    assert max(r["nodes"] for r in rows["churn"]) >= 128
    assert max(r["nodes"] for r in rows["sharded"]) >= 128
    # O(1) per-node load: the 256-node row costs no more than 3x the
    # 4-node row (run_e16's check_scaling already asserted; pin here)
    by_n = {r["nodes"]: r["msgs_per_node_per_period"] for r in swim}
    assert by_n[256] <= 3.0 * by_n[4], by_n
    # detection latency stays bounded as the cluster grows: the largest
    # cluster confirms death within ~2x the smallest cluster's worst
    assert by_n, by_n
    worst = max(r["confirm_max"] for r in swim)
    interval = swim[0]["interval"]
    assert worst <= 15 * interval, (
        f"confirm latency {worst} exceeds 15 protocol periods")
    # churn rows accounted for every post
    for row in rows["churn"]:
        assert row["accounted"] == 1.0, row
    for row in rows["sharded"]:
        assert row["executed"] == row["raised"] and row["converged"], row


def test_e16_churn_deterministic(benchmark):
    """Same-seed churn runs are bit-identical, heap and wheel alike."""

    def run():
        return run_churn_row(16, scheduler="heap")

    first = benchmark.pedantic(run, rounds=1, iterations=1)
    second = run_churn_row(16, scheduler="heap")
    wheel = run_churn_row(16, scheduler="wheel")
    assert first["digest"] == second["digest"], \
        "same-seed churn runs must be bit-identical"
    assert first["digest"] == wheel["digest"], \
        "wheel-backend churn run must match the heap digest"
    assert first["accounted"] == 1.0
