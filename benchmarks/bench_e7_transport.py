"""E7: identical event behaviour under RPC and DSM transports (§2)."""

from repro.bench.experiments import run_e7


def test_e7_transport_transparency(benchmark, record):
    table = benchmark.pedantic(run_e7, rounds=3, iterations=1)
    record("e7_transport", table)
    rows = [dict(zip(table.columns, row)) for row in table.rows]
    by_transport = {row["transport"]: row for row in rows}
    # the design goal: the mechanism works identically under either
    # transport — same handlers, same recipients, same order
    for row in rows:
        assert row["per-thread handler traces equal"] == "yes"
        assert row["marks delivered"] == 3
    # but the substrate differs: RPC ships threads, DSM ships pages
    assert by_transport["rpc"]["invoke msgs"] > 0
    assert by_transport["dsm"]["invoke msgs"] == 0
    assert by_transport["dsm"]["dsm msgs"] > 0
