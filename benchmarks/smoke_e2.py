#!/usr/bin/env python3
"""Quick-mode E2 smoke check for CI.

Runs a reduced locate sweep (seconds, not minutes), asserts the cached
locator's headline claim — ``cached`` costs no more messages per post
than ``path`` and exactly one once hot — and emits the machine-readable
``BENCH_locate.json`` at the repo root.

Run:  PYTHONPATH=src python benchmarks/smoke_e2.py
"""

import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).parent))

from bench_e2_locate import REPO_ROOT, _rows, assert_e2_shape  # noqa: E402
from repro.bench.experiments import run_e2  # noqa: E402
from repro.bench.harness import emit_json  # noqa: E402


def main() -> None:
    table = run_e2(cluster_sizes=(2, 8, 16), depths=(1, 4), posts=5)
    assert_e2_shape(table)
    rows = _rows(table)
    cached = {(r["nodes"], r["migration depth"]): r["msgs/post"]
              for r in rows if r["locator"] == "cached (hot)"}
    path = {(r["nodes"], r["migration depth"]): r["msgs/post"]
            for r in rows if r["locator"] == "path"}
    for key, msgs in cached.items():
        assert msgs <= path[key], \
            f"cached (hot) {msgs} msgs/post exceeds path {path[key]} at {key}"
    emit_json(table, REPO_ROOT / "BENCH_locate.json", experiment="e2_locate",
              cluster_sizes=[2, 8, 16], depths=[1, 4], posts=5, quick=True)
    print(table.render())
    print("\nsmoke OK: cached (hot) <= path msgs/post on every row")


if __name__ == "__main__":
    main()
