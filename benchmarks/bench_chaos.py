"""Chaos: crash-tolerant event delivery under seeded drops, duplicates
and node crash/recover cycles.

Sweeps drop rate 0-20% for the path and cached locators with periodic
crashes, and asserts the reliability layer's guarantees: exactly-once
handler execution, zero lost-or-hung posts, convergence after heal.
Emits ``BENCH_chaos.json`` at the repo root.
"""

import pathlib

from repro.bench.chaos import ChaosSpec, run_chaos, run_chaos_sweep
from repro.bench.harness import emit_json

REPO_ROOT = pathlib.Path(__file__).parent.parent

DROP_RATES = [0.0, 0.05, 0.1, 0.2]
LOCATORS = ["path", "cached"]


def _rows(table):
    return [dict(zip(table.columns, row)) for row in table.rows]


def assert_chaos_shape(table, reports):
    """The delivery guarantees, checked on every swept cell.

    Shared with the CI smoke runner (``benchmarks/smoke_chaos.py``),
    which calls it on a reduced sweep.
    """
    for report in reports:
        assert not report.violations, \
            f"{report.spec.locator}@drop={report.spec.drop_rate}: " \
            f"{report.violations[:3]}"
    rows = _rows(table)
    for row in rows:
        # Zero hangs, zero losses: every post executed exactly once or
        # surfaced a dead-target/undeliverable notice to the raiser.
        assert row["accounted"] == 1.0, row
        # Exactly-once: executed_once counts handler runs == 1; any
        # duplicate run is a violation caught above.
        assert row["executed_once"] + row["noticed"] >= row["posts"], row

    def cell(locator, rate, col):
        for row in rows:
            if (row["locator"], row["drop_rate"]) == (locator, rate):
                return row[col]
        raise AssertionError(f"missing row {locator}/{rate}")

    for locator in {row["locator"] for row in rows}:
        # No network faults -> the channel never needs to retransmit for
        # loss; only crash windows cost deliveries.
        assert cell(locator, 0.0, "retransmits/post") < \
            cell(locator, 0.2, "retransmits/post")
        # Retransmission keeps delivery useful even at 20% loss: most
        # posts still execute exactly once.
        assert cell(locator, 0.2, "success_rate") >= 0.7
        # At the acceptance point (drop=0.1 with periodic crash/recover)
        # the success rate stays high and everything is accounted for.
        assert cell(locator, 0.1, "success_rate") >= 0.8
        assert cell(locator, 0.1, "accounted") == 1.0


def test_chaos_delivery_guarantees(benchmark, record):
    base = ChaosSpec(seed=11, posts=150, duplicate_rate=0.05,
                     crash_period=0.8, down_time=0.5,
                     partition_period=1.7, partition_length=0.3)
    result = {}

    def run():
        table, reports = run_chaos_sweep(DROP_RATES, LOCATORS, base)
        result["table"], result["reports"] = table, reports
        return table

    benchmark.pedantic(run, rounds=1, iterations=1)
    table, reports = result["table"], result["reports"]
    record("chaos", table)
    emit_json(table, REPO_ROOT / "BENCH_chaos.json", experiment="chaos",
              drop_rates=DROP_RATES, locators=LOCATORS, seed=base.seed,
              posts=base.posts, n_nodes=base.n_nodes,
              crash_period=base.crash_period,
              duplicate_rate=base.duplicate_rate,
              digests=[r.digest for r in reports])
    assert_chaos_shape(table, reports)


def test_chaos_deterministic(benchmark):
    spec = ChaosSpec(seed=23, locator="cached", posts=80, drop_rate=0.1,
                     duplicate_rate=0.1, partition_period=1.3)

    def run():
        return run_chaos(spec).digest

    digest = benchmark.pedantic(run, rounds=1, iterations=1)
    assert digest == run_chaos(spec).digest, \
        "same-seed chaos runs must be bit-identical"
