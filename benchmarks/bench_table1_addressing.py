"""T1: reproduce the paper's §5.3 table of raise-call addressing options."""

from repro.bench.experiments import run_table1


def test_table1_addressing(benchmark, record):
    table = benchmark.pedantic(run_table1, rounds=3, iterations=1)
    record("table1_addressing", table)
    measured = dict(zip(table.column("call"),
                        table.column("recipients (measured)")))
    # every call form delivered to exactly the recipients the paper lists
    assert measured["raise(e, tid)"] == "tid-target"
    assert measured["raise(e, gtid)"] == "g0,g1,g2"
    assert measured["raise(e, oid)"] == "object"
    assert measured["raise_and_wait(e, tid)"] == "tid-target"
    assert measured["raise_and_wait(e, gtid)"] == "g0,g1,g2"
    assert measured["raise_and_wait(e, oid)"] == "object"
    blocked = dict(zip(table.column("call"), table.column("raiser blocked")))
    assert all(blocked[c] == "no" for c in blocked if "wait" not in c)
    assert all(blocked[c] == "yes" for c in blocked if "wait" in c)
    # synchronous raising costs the raiser real (virtual) time; async not
    latency = dict(zip(table.column("call"),
                       table.column("raiser latency (ms)")))
    assert latency["raise(e, tid)"] == 0.0
    assert latency["raise_and_wait(e, tid)"] > 1.0
