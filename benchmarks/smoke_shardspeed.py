#!/usr/bin/env python3
"""Quick-mode E15 shard-speed smoke check for CI.

Runs a scaled-down sharded pair (16 nodes / 2 shards, default knobs vs
the legacy per-message/spawn protocol) and the sparse skip-ahead pair,
asserts the observational-purity contract — bit-identical digests, no
lost posts, fewer barriered windows under skip-ahead — and fails on a
throughput regression against the committed ``BENCH_shardspeed.json``
16-node default row.  The committed baseline was measured by the full
sweep (200 posts/node); the quick run amortises worker boot over far
fewer posts and CI runners are slower still, so
``SHARDSPEED_SMOKE_MIN_FRACTION`` defaults to a loose 0.5 — the gate
catches collapses (a knob silently off, per-message pickling back on),
not jitter.

Run:  PYTHONPATH=src python benchmarks/smoke_shardspeed.py
"""

import json
import os
import pathlib
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

from repro.bench.scale import ScaleSpec  # noqa: E402
from repro.bench.shardspeed import (  # noqa: E402
    LEGACY_KNOBS,
    run_sharded_with,
    run_skip_pair,
    sparse_spec,
)

SMOKE_SPEC = ScaleSpec(n_nodes=16, shard_count=2, posts_per_node=60)


def main() -> None:
    baseline_path = REPO_ROOT / "BENCH_shardspeed.json"
    baseline = json.loads(baseline_path.read_text(encoding="utf-8"))
    default_rows = [pair["default"] for pair in
                    baseline["rows"]["sharded"]]
    committed = min(row["posts_per_sec"] for row in default_rows
                    if row["nodes"] == SMOKE_SPEC.n_nodes)
    min_fraction = float(os.environ.get(
        "SHARDSPEED_SMOKE_MIN_FRACTION", "0.5"))
    floor = committed * min_fraction

    fast = run_sharded_with(SMOKE_SPEC)
    slow = run_sharded_with(SMOKE_SPEC, **LEGACY_KNOBS)
    assert fast["digest"] == slow["digest"], (
        f"codec/batching changed the run: {fast['digest'][:12]} != "
        f"{slow['digest'][:12]}")
    assert fast["executed"] == fast["raised"] == SMOKE_SPEC.total_posts
    assert slow["executed"] == slow["raised"] == SMOKE_SPEC.total_posts

    skip, dense = run_skip_pair(sparse_spec(quick=True))

    rate = fast["posts_per_sec"]
    assert rate >= floor, (
        f"sharded throughput regression: {rate:.1f} posts/s is below "
        f"{min_fraction:.0%} of the committed 16-node default row "
        f"{committed} posts/s (floor {floor:.1f})")

    print(f"smoke OK: {SMOKE_SPEC.total_posts} posts at "
          f"{rate:.1f} posts/s (>= {min_fraction:.0%} of committed "
          f"{committed}); default/legacy digests identical at "
          f"{fast['digest'][:12]}; skip-ahead ran {skip['windows']} "
          f"windows vs {dense['windows']} dense with identical digest "
          f"{skip['digest'][:12]}")


if __name__ == "__main__":
    sys.exit(main())
