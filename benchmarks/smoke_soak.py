#!/usr/bin/env python3
"""Quick-mode soak smoke check for CI.

Runs a scaled-down E12 soak (20k posts, seconds of wall-clock) on the
wheel backend, asserts the phase invariants (no lost posts, outbox
drained — run_soak's phases raise on violation), checks same-seed
determinism of the deterministic columns, and fails on a >20% burst
throughput regression against the committed ``BENCH_soak.json``
baseline. The committed baseline was measured on the dev machine;
``SOAK_SMOKE_MIN_FRACTION`` (default 0.8) scales the floor for slower
CI runners without disabling the regression gate.

Run:  PYTHONPATH=src python benchmarks/smoke_soak.py
"""

import json
import os
import pathlib
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

from repro.bench.soak import (  # noqa: E402
    SoakSpec,
    deterministic_view,
    run_soak,
)

SMOKE_POSTS = 20_000


def main() -> None:
    baseline_path = REPO_ROOT / "BENCH_soak.json"
    baseline = json.loads(baseline_path.read_text(encoding="utf-8"))
    baseline_burst = baseline["phases"]["burst"]["wall_posts_per_sec"]
    min_fraction = float(os.environ.get("SOAK_SMOKE_MIN_FRACTION", "0.8"))
    floor = baseline_burst * min_fraction

    spec = SoakSpec(posts=SMOKE_POSTS, scheduler="wheel")
    table, payload = run_soak(spec)
    table.show()

    # Same-seed determinism: every column but wall-clock is bit-identical.
    _, again = run_soak(spec)
    for phase in payload["phases"]:
        first = deterministic_view(payload["phases"][phase])
        second = deterministic_view(again["phases"][phase])
        assert first == second, \
            f"same-seed soak {phase} phase not deterministic"

    burst = payload["phases"]["burst"]["wall_posts_per_sec"]
    assert burst >= floor, (
        f"burst throughput regression: {burst} posts/s is below "
        f"{min_fraction:.0%} of the committed baseline "
        f"{baseline_burst} posts/s (floor {floor:.1f})")

    print(f"\nsmoke OK: {payload['total_posts']} posts, burst "
          f"{burst} posts/s >= {min_fraction:.0%} of committed baseline "
          f"{baseline_burst}; deterministic columns bit-identical "
          "across same-seed runs")


if __name__ == "__main__":
    sys.exit(main())
