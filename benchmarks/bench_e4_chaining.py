"""E4: TERMINATE-chained distributed lock cleanup (§4.2)."""

from repro.bench.experiments import run_e4


def test_e4_lock_cleanup_chaining(benchmark, record):
    table = benchmark.pedantic(
        run_e4, kwargs={"lock_counts": (1, 2, 4, 8, 16)},
        rounds=1, iterations=1)
    record("e4_chaining", table)
    rows = [dict(zip(table.columns, row)) for row in table.rows]
    for row in rows:
        # every lock released, no matter how many were chained
        assert row["released %"] == 100.0
        # chain depth tracks the number of acquires
        assert row["chain depth"] == row["locks held"]
    # cleanup cost is linear in chain depth (each handler is one
    # surrogate invocation of the lock manager)
    msgs = {row["locks held"]: row["cleanup msgs"] for row in rows}
    assert msgs[16] > msgs[8] > msgs[1]
    per_lock = (msgs[16] - msgs[8]) / 8
    assert 1 <= per_lock <= 4
