#!/usr/bin/env python3
"""Transport-backend smoke check for CI (the ``transport-smoke`` job).

Three quick proofs that the transport port holds its contract:

1. **sim — bit-identity.** Three frozen chaos/durable/fastpath specs
   must reproduce their pre-port reference digests exactly, on both
   the heap and wheel schedulers.  Any change to the sim transport
   path that perturbs message scheduling order fails here first.
2. **sharded — determinism + ground truth.** A 16-node / 4-shard
   multi-process run of the E14 scenario twice: same-seed digests must
   match each other, per-node delivery counts must match the
   independently computed expected distribution, and nothing may be
   lost across the pipe barriers.
3. **tcp — real sockets end to end.** The loopback example cluster
   with reliable+durable knobs on: the invocation completes, every
   durable post lands, the outbox drains.

Run:  PYTHONPATH=src python benchmarks/smoke_transport.py
"""

import subprocess
import sys
from collections import Counter
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

from repro.bench.chaos import ChaosSpec, run_chaos  # noqa: E402
from repro.bench.scale import (  # noqa: E402
    ScaleSpec,
    _node_targets,
    _scenario_args,
    run_scale_sharded,
)

#: same-seed reference digests frozen at the pre-port HEAD; the sim
#: backend must stay bit-identical to these
REFERENCE_DIGESTS = {
    "chaos": (
        "49b1db13dad533366ef6c9742bdcedde966064d7c3ca5fd14f750b1e637aa056",
        ChaosSpec(seed=23, locator="cached", posts=40, drop_rate=0.1)),
    "durable": (
        "3327ab851341d539023b96a2a25ea58e6c91d3a28463f8c931d9190655cb11ba",
        ChaosSpec(seed=31, posts=40, drop_rate=0.1, durable=True,
                  crash_period=0.8, down_time=0.5)),
    "fastpath": (
        "337c61956bfa83b586ada5d156a6e42a9e599bb428087e9cb02e8ab9680cb2b7",
        ChaosSpec(seed=7, posts=50, drop_rate=0.05, duplicate_rate=0.05)),
    "chaos-wheel": (
        "49b1db13dad533366ef6c9742bdcedde966064d7c3ca5fd14f750b1e637aa056",
        ChaosSpec(seed=23, locator="cached", posts=40, drop_rate=0.1,
                  scheduler="wheel")),
}


def check_sim_bit_identity() -> None:
    for name, (want, spec) in REFERENCE_DIGESTS.items():
        report = run_chaos(spec)
        assert report.digest == want, (
            f"sim transport broke bit-identity: {name} digest "
            f"{report.digest} != frozen reference {want}")
        assert not report.violations, (name, report.violations)
    print(f"sim OK: {len(REFERENCE_DIGESTS)} frozen digests reproduced "
          "bit-identically (heap + wheel)")


def check_sharded_determinism() -> None:
    spec = ScaleSpec(n_nodes=16, shard_count=4, posts_per_node=50)
    first = run_scale_sharded(spec)
    second = run_scale_sharded(spec)
    assert first["digest"] == second["digest"], (
        "sharded same-seed runs diverged: "
        f"{first['digest']} vs {second['digest']}")
    assert first["executed"] == first["raised"] == spec.total_posts, first
    # independent ground truth: the deterministic target schedule
    expected = Counter()
    args = _scenario_args(spec)
    for node in range(spec.n_nodes):
        for target in _node_targets(args, node, spec.n_nodes):
            expected[target] += 1
    merged = Counter({int(k): v for k, v in first["per_node"].items()})
    assert merged == expected, (
        f"sharded per-node deliveries diverge from the schedule: "
        f"{merged} != {expected}")
    print(f"sharded OK: 16 nodes / 4 shards, {first['executed']} posts "
          f"({first['cross_shard']} cross-shard) reproducible at digest "
          f"{first['digest'][:12]}")


def check_tcp_example() -> None:
    proc = subprocess.run(
        [sys.executable, str(REPO_ROOT / "examples" / "tcp_cluster.py")],
        capture_output=True, text=True, timeout=120,
        env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin"})
    assert proc.returncode == 0, (
        f"tcp example failed:\n{proc.stdout}\n{proc.stderr}")
    assert "0 outbox entries left pending" in proc.stdout, proc.stdout
    print("tcp OK: loopback example ran reliable+durable end to end")


def main() -> None:
    check_sim_bit_identity()
    check_sharded_determinism()
    check_tcp_example()
    print("transport smoke passed")


if __name__ == "__main__":
    sys.exit(main())
