"""E11: handler supervision — watchdog deadlines, buddy circuit
breakers, dead-letter quarantine, heartbeat failure detector.

Runs the three E11 workloads (handler-faults, durable-poison,
buddy-breaker) with supervision on and off, asserts the
every-post-accounted guarantees and the unsupervised contrast, and
emits ``BENCH_supervise.json`` at the repo root.
"""

import pathlib

from repro.bench.harness import emit_json
from repro.bench.supervise import (
    SuperviseSpec,
    deterministic_view,
    run_handler_faults,
    run_supervise_sweep,
)

REPO_ROOT = pathlib.Path(__file__).parent.parent


def assert_supervise_shape(results):
    """The E11 acceptance bars, checked by bench and CI smoke alike."""
    for workload in ("handler-faults", "durable-poison"):
        on, off = results[workload]["on"], results[workload]["off"]
        # Supervised: every post executed once, noticed, or quarantined;
        # nothing hung, nothing lost — with faults genuinely injected.
        assert on["violations"] == 0, (workload, on)
        assert on["accounted_rate"] == 1.0, (workload, on)
        assert on["hung_handlers"] == 0, (workload, on)
        assert sum(on["faults_injected"].values()) > 0, (workload, on)
        assert on["quarantined"] > 0, (workload, on)
        assert on["handler_timeouts"] > 0, (workload, on)
        # Unsupervised contrast: the same faults wedge handlers and
        # lose posts (that gap is what the subsystem exists to close).
        assert off["hung_handlers"] > 0, (workload, off)
        assert off["accounted_rate"] < 1.0, (workload, off)
        assert off["violations"] > 0, (workload, off)
    on = results["durable-poison"]["on"]
    # The durable bar is exactly-once-or-quarantined, no notice escape.
    assert on["executed_once"] + on["quarantined"] == on["posts"], on
    assert on["noticed"] == 0, on
    buddy_on = results["buddy-breaker"]["on"]
    buddy_off = results["buddy-breaker"]["off"]
    for row in (buddy_on, buddy_off):
        # Delivery totals identical: supervision changes how fast the
        # fallback engages, never whether posts are handled.
        assert (row["buddy_served"] + row["fallback_handled"]
                == row["posts"]), row
    assert buddy_on["suspicions"] > 0, buddy_on
    assert buddy_on["fast_fails"] > 0, buddy_on
    assert buddy_on["breaker_opens"] > 0, buddy_on
    assert buddy_on["breaker_skips"] > 0, buddy_on
    assert buddy_off["fast_fails"] == buddy_off["breaker_opens"] == 0, \
        buddy_off
    # Failing fast + skipping the dead buddy must cut the mean stall.
    assert buddy_on["mean_latency"] <= 0.5 * buddy_off["mean_latency"], \
        (buddy_on, buddy_off)


def test_e11_supervise(benchmark, record):
    spec = SuperviseSpec(seed=7, posts=60, buddy_posts=40)
    result = {}

    def run():
        table, results = run_supervise_sweep(spec)
        result["table"], result["results"] = table, results
        return table

    benchmark.pedantic(run, rounds=1, iterations=1)
    table, results = result["table"], result["results"]
    record("e11_supervise", table)
    emit_json(table, REPO_ROOT / "BENCH_supervise.json",
              experiment="supervise", seed=spec.seed, posts=spec.posts,
              buddy_posts=spec.buddy_posts, hang_rate=spec.hang_rate,
              raise_rate=spec.raise_rate, poison_rate=spec.poison_rate,
              drop_rate=spec.drop_rate, crash_period=spec.crash_period,
              results={w: {m: deterministic_view(r)
                           for m, r in modes.items()}
                       for w, modes in results.items()})
    assert_supervise_shape(results)


def test_e11_deterministic(benchmark):
    spec = SuperviseSpec(seed=19, posts=40)

    def run():
        return deterministic_view(run_handler_faults(spec, supervised=True,
                                                     durable=True))

    first = benchmark.pedantic(run, rounds=1, iterations=1)
    assert first == deterministic_view(
        run_handler_faults(spec, supervised=True, durable=True)), \
        "same-seed supervised runs must be bit-identical"
