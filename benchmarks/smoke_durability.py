#!/usr/bin/env python3
"""Quick-mode durability smoke check for CI.

Runs a reduced checkpoint-interval sweep with ``durable_delivery`` on
(seconds, not minutes), asserts the store's guarantees — zero journaled
posts lost, checkpoint-bounded recovery replay, sub-2x fault-free
journal overhead, determinism — and emits the machine-readable
``BENCH_durability.json`` at the repo root.

Run:  PYTHONPATH=src python benchmarks/smoke_durability.py
"""

import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).parent))

from bench_durability import REPO_ROOT, assert_durability_shape  # noqa: E402
from repro.bench.chaos import ChaosSpec, run_chaos  # noqa: E402
from repro.bench.durability import (  # noqa: E402
    measure_fault_free_overhead,
    run_durability_sweep,
)
from repro.bench.harness import emit_json  # noqa: E402

CHECKPOINT_INTERVALS = [8, 32, None]


def main() -> None:
    base = ChaosSpec(seed=7, durable=True, posts=120, drop_rate=0.1,
                     crash_period=0.5, down_time=0.4)
    overhead = measure_fault_free_overhead(base)
    table, reports = run_durability_sweep(CHECKPOINT_INTERVALS, base)
    assert_durability_shape(table, reports, overhead)
    spec = ChaosSpec(seed=19, durable=True, posts=60, drop_rate=0.1,
                     crash_period=0.6, down_time=0.4, checkpoint_interval=16)
    assert run_chaos(spec).digest == run_chaos(spec).digest, \
        "same-seed durable chaos runs must be bit-identical"
    emit_json(table, REPO_ROOT / "BENCH_durability.json",
              experiment="durability",
              checkpoint_intervals=[i if i is not None else "off"
                                    for i in CHECKPOINT_INTERVALS],
              seed=base.seed, posts=base.posts, n_nodes=base.n_nodes,
              drop_rate=base.drop_rate, crash_period=base.crash_period,
              replay_cost=base.replay_cost, fault_free_overhead=overhead,
              quick=True, digests=[r.digest for r in reports])
    print(table.render())
    print(f"\nfault-free overhead: {overhead['journal_appends']} appends "
          f"for {overhead['messages_sent']} messages "
          f"({overhead['appends_per_message']} appends/message)")
    print("smoke OK: zero journaled posts lost; recovery replay bounded "
          "by the checkpoint interval; same-seed runs bit-identical")


if __name__ == "__main__":
    main()
