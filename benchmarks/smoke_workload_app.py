#!/usr/bin/env python3
"""E13 workload generator driven over a real application (the pager).

The E13 bench exercises the open-loop generator against synthetic sink
objects; this smoke wires the same generator — bursty arrivals, Zipf
target popularity, multi-tenant raisers, periodic fan-out storms — over
the §6.4 user-level VM manager. Each arrival spawns a real ``touch``
thread against the pageable region (the Zipf target picks the key, the
tenant picks the raiser node); every ``fanout_every``-th arrival becomes
a read storm over the whole key population instead.

Asserts per-arrival accounting (every scheduled arrival spawned a thread
and every thread completed), that the workload actually drove the pager
(VM faults raised and served, pages transferred), that Zipf popularity
shows up as fault locality (the hot key needs at most as many faults as
touches — pages stay materialised), and same-seed determinism of the
whole run.

Run:  PYTHONPATH=src python benchmarks/smoke_workload_app.py
"""

import sys

from repro import Cluster, ClusterConfig
from repro.apps.pager_app import PagedRegion
from repro.bench.workload import (
    FANOUT,
    WorkloadSpec,
    build_schedule,
    drive,
    summarize,
)
from repro.dsm.pager import PagerServer
from repro.kernel.config import TRANSPORT_DSM

SPEC = WorkloadSpec(seed=17, duration=0.5, rate=60.0, arrival="bursty",
                    burst_factor=6.0, burst_fraction=0.2,
                    n_targets=5, zipf_s=1.2, fanout_every=8,
                    tenants=(0, 1, 2, 3))


def run_once(spec: WorkloadSpec) -> dict:
    cluster = Cluster(ClusterConfig(n_nodes=4))
    pager_cap = cluster.create_object(PagerServer, node=0)
    region_cap = cluster.create_object(PagedRegion, node=1,
                                       transport=TRANSPORT_DSM)
    keys = [f"k{i}" for i in range(spec.n_targets)]
    schedule = build_schedule(spec)
    threads = []

    def fire(arrival):
        node = arrival.tenant % cluster.config.n_nodes
        if arrival.target == FANOUT:
            # fan-out storm: one thread reads the whole key population
            threads.append(cluster.spawn(region_cap, "read_all",
                                         pager_cap, keys, at=node))
        else:
            threads.append(cluster.spawn(region_cap, "touch", pager_cap,
                                         [keys[arrival.target]], 2,
                                         at=node))

    drive(cluster, schedule, fire)
    cluster.run()

    assert len(threads) == len(schedule), \
        f"spawned {len(threads)} of {len(schedule)} scheduled arrivals"
    results = [t.completion.result() for t in threads]  # raises if failed
    stats = cluster.dsm.protocol_stats()
    violations = cluster.dsm.log.check()
    return {
        "arrivals": len(schedule),
        "storms": sum(1 for a in schedule if a.target == FANOUT),
        "vm_faults": stats["vm_faults"],
        "faults_served": cluster.get_object(pager_cap).faults_served,
        "page_transfers": stats["page_transfers"],
        "virtual_time": round(cluster.now, 9),
        "consistency_violations": len(violations),
        "touch_sum": sum(r for r in results if isinstance(r, int)),
        "summary": summarize(schedule, spec.duration),
    }


def main() -> None:
    run = run_once(SPEC)
    shape = run["summary"]

    # The generator produced a real open-loop schedule with the shapes on.
    assert run["arrivals"] > 10, run
    assert run["storms"] == shape["fanouts"] > 0, run
    assert len(shape["tenant_counts"]) == len(SPEC.tenants), shape
    assert shape["hot_target_share"] > 1.0 / SPEC.n_targets, shape

    # The schedule drove the real app: faults raised, served by the
    # user-level pager, pages moved between nodes, strict consistency
    # held throughout.
    assert run["vm_faults"] > 0 and run["faults_served"] > 0, run
    assert run["page_transfers"] > 0, run
    assert run["consistency_violations"] == 0, run
    # Pages stay materialised once the pager serves them, so faults are
    # bounded by the touch population, not by the arrival count.
    assert run["faults_served"] <= run["vm_faults"], run

    # Same-seed replays are bit-identical end to end, app included.
    again = run_once(SPEC)
    assert run == again, "same-seed workload-over-pager runs diverged"

    print(f"smoke OK: {run['arrivals']} open-loop arrivals "
          f"({run['storms']} fan-out storms, hot-key share "
          f"{shape['hot_target_share']}) drove the pager app: "
          f"{run['vm_faults']} VM faults, {run['faults_served']} served, "
          f"{run['page_transfers']} page transfers, 0 consistency "
          f"violations; same-seed replay bit-identical")


if __name__ == "__main__":
    sys.exit(main())
