"""E3: master handler thread vs thread-per-event for object events (§7)."""

from repro.bench.experiments import run_e3


def test_e3_master_vs_per_event(benchmark, record):
    table = benchmark.pedantic(
        run_e3, kwargs={"event_counts": (10, 50, 200)},
        rounds=1, iterations=1)
    record("e3_master_thread", table)
    rows = [dict(zip(table.columns, row)) for row in table.rows]

    def row(mode, events):
        for candidate in rows:
            if (candidate["mode"], candidate["events"]) == (mode, events):
                return candidate
        raise AssertionError(f"missing row {mode}/{events}")

    for events in (10, 50, 200):
        master = row("master", events)
        per_event = row("per-event", events)
        # the master thread is created once; per-event mode pays per event
        assert master["threads created"] == 1
        assert per_event["threads created"] == events
        # ... which the virtual clock reflects
        assert master["virtual time (ms)"] < per_event["virtual time (ms)"]
    # per-event creation overhead grows linearly with event count; the
    # master's is constant — "eliminating thread-creation costs"
    assert row("master", 200)["creation overhead (ms)"] == \
        row("master", 10)["creation overhead (ms)"]
    assert row("per-event", 200)["creation overhead (ms)"] == \
        20 * row("per-event", 10)["creation overhead (ms)"]
