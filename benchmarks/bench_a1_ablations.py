"""A1: ablations of the design choices DESIGN.md calls out."""

from repro.bench.experiments import run_ablations


def test_a1_ablations(benchmark, record):
    table = benchmark.pedantic(run_ablations, rounds=1, iterations=1)
    record("a1_ablations", table)
    rows = {(row[0], row[1]): dict(zip(table.columns[2:], row[2:]))
            for row in table.rows}

    # §1: partial-result notification prunes real work
    explored_on = rows[("partial-result notification", "on")]["value"]
    explored_off = rows[("partial-result notification", "off")]["value"]
    assert explored_on < explored_off

    # §6.3: without ABORT-on-unwind, objects get no cleanup notification
    assert rows[("ABORT on unwind", "on")]["value"] > 0
    assert rows[("ABORT on unwind", "off")]["value"] == 0

    # §4.1: current-context handlers are cheaper than unscheduled
    # invocations back to the attaching object (thread far from home)
    current = rows[("handler context",
                    "current (per-thread memory)")]["value"]
    attaching = rows[("handler context", "attaching object")]["value"]
    assert current < attaching

    # DSM false sharing: packing contended fields onto one page costs
    # invalidations that split layouts avoid
    assert rows[("DSM layout", "2 field(s)/page")]["value"] > \
        rows[("DSM layout", "1 field(s)/page")]["value"]
