"""Durability: write-ahead journal overhead and checkpointed recovery.

Sweeps the checkpoint interval under the seeded crash/recover chaos
scenario with ``durable_delivery`` on, and asserts the subsystem's
contract: zero journaled posts lost (every durable post executes exactly
once, the outbox drains), recovery replay bounded by the checkpoint
interval, and fault-free journal overhead below two appends per fabric
message. Emits ``BENCH_durability.json`` at the repo root.
"""

import pathlib

from repro.bench.chaos import ChaosSpec, run_chaos
from repro.bench.durability import (
    measure_fault_free_overhead,
    run_durability_sweep,
)
from repro.bench.harness import emit_json

REPO_ROOT = pathlib.Path(__file__).parent.parent

CHECKPOINT_INTERVALS = [8, 32, 128, None]


def _rows(table):
    return [dict(zip(table.columns, row)) for row in table.rows]


def assert_durability_shape(table, reports, overhead):
    """The durability guarantees, checked on every swept cell.

    Shared with the CI smoke runner (``benchmarks/smoke_durability.py``),
    which calls it on a reduced sweep.
    """
    for report in reports:
        assert not report.violations, \
            f"ckpt={report.spec.checkpoint_interval}: " \
            f"{report.violations[:3]}"
    rows = _rows(table)
    for row in rows:
        # Zero lost posts: with durable_delivery on, every journaled
        # post executes exactly once — no notice escape hatch.
        assert row["executed_once"] == row["posts"], row
        assert row["pending_end"] == 0, row
        if row["ckpt_interval"] != "off":
            # Checkpoint-bounded replay: a recovery rolls forward at
            # most the checkpoint record plus one interval of tail.
            interval = int(row["ckpt_interval"])
            assert row["replayed_max"] <= interval + 1, row

    by_interval = {row["ckpt_interval"]: row for row in rows}
    finite = sorted((int(k) for k in by_interval if k != "off"))
    assert finite and "off" in by_interval, \
        "sweep must cover checkpointing on and off"
    # Recovery time scales with the checkpoint interval: replay length,
    # charged time, and retained journal all grow monotonically from the
    # tightest interval up to checkpointing disabled.
    ordered = [by_interval[str(k)] for k in finite] + [by_interval["off"]]
    for tighter, looser in zip(ordered, ordered[1:]):
        assert tighter["replayed_max"] <= looser["replayed_max"], \
            (tighter, looser)
        assert tighter["recovery_ms_max"] <= looser["recovery_ms_max"], \
            (tighter, looser)
        assert tighter["retained_end"] <= looser["retained_end"], \
            (tighter, looser)
    assert ordered[0]["recovery_ms_mean"] < ordered[-1]["recovery_ms_mean"], \
        "tight checkpointing must beat no checkpointing on recovery time"
    # Fault-free overhead: the journal stays under two appends per
    # message on the wire (a remote post's three appends ride on at
    # least four messages).
    assert not overhead["violations"], overhead
    assert overhead["executed_once"] == overhead["posts"], overhead
    assert overhead["appends_per_message"] <= 2.0, overhead


def test_durability_guarantees(benchmark, record):
    base = ChaosSpec(seed=7, durable=True, posts=240, drop_rate=0.1,
                     crash_period=0.5, down_time=0.4)
    result = {}

    def run():
        result["overhead"] = measure_fault_free_overhead(base)
        table, reports = run_durability_sweep(CHECKPOINT_INTERVALS, base)
        result["table"], result["reports"] = table, reports
        return table

    benchmark.pedantic(run, rounds=1, iterations=1)
    table, reports = result["table"], result["reports"]
    overhead = result["overhead"]
    record("durability", table)
    emit_json(table, REPO_ROOT / "BENCH_durability.json",
              experiment="durability",
              checkpoint_intervals=[i if i is not None else "off"
                                    for i in CHECKPOINT_INTERVALS],
              seed=base.seed, posts=base.posts, n_nodes=base.n_nodes,
              drop_rate=base.drop_rate, crash_period=base.crash_period,
              replay_cost=base.replay_cost, fault_free_overhead=overhead,
              digests=[r.digest for r in reports])
    assert_durability_shape(table, reports, overhead)


def test_durability_deterministic(benchmark):
    spec = ChaosSpec(seed=19, durable=True, posts=80, drop_rate=0.1,
                     crash_period=0.6, down_time=0.4,
                     checkpoint_interval=16)

    def run():
        return run_chaos(spec).digest

    digest = benchmark.pedantic(run, rounds=1, iterations=1)
    assert digest == run_chaos(spec).digest, \
        "same-seed durable chaos runs must be bit-identical"
