"""E13: overload control — credit-based flow control + admission gate.

Runs the E13 campaign (knee sweep with control on/off, policy matrix at
2x overload), asserts the overload acceptance bars — >= 90% goodput at
2x with bounded p99, every post executed / noticed / shed-with-notice /
deferred, zero durable posts lost — and emits ``BENCH_overload.json``
at the repo root.
"""

import pathlib

from repro.bench.harness import emit_json
from repro.bench.overload import (
    OverloadSpec,
    assert_overload_shape,
    deterministic_view,
    run_overload,
    run_overload_sweep,
)

REPO_ROOT = pathlib.Path(__file__).parent.parent


def test_e13_overload(benchmark, record):
    spec = OverloadSpec()
    result = {}

    def run():
        table, results = run_overload_sweep(spec)
        result["table"], result["results"] = table, results
        return table

    benchmark.pedantic(run, rounds=1, iterations=1)
    table, results = result["table"], result["results"]
    record("e13_overload", table)
    emit_json(table, REPO_ROOT / "BENCH_overload.json",
              experiment="overload",
              knee={x: {mode: deterministic_view(row)
                        for mode, row in modes.items()}
                    for x, modes in results["knee"].items()},
              policies={name: deterministic_view(row)
                        for name, row in results["policies"].items()},
              spec=results["spec"])
    assert_overload_shape(results)


def test_e13_deterministic(benchmark):
    spec = OverloadSpec(seed=23, duration=0.5)

    def run():
        return deterministic_view(run_overload(spec, control=True))

    first = benchmark.pedantic(run, rounds=1, iterations=1)
    assert first == deterministic_view(run_overload(spec, control=True)), \
        "same-seed overload runs must be bit-identical"
