#!/usr/bin/env python3
"""Quick-mode transport fast-path smoke check for CI.

Runs the reduced E10 sweep (seconds), asserts the savings — reliable-mode
acks/post with coalescing on at most half of coalescing off, total
msgs/post down at least 25% at drop=0, piggybacked acks on reverse
traffic, group-commit cutting journal commit units at equal appends —
plus same-seed determinism, and emits ``BENCH_fastpath.json`` at the
repo root.

Run:  PYTHONPATH=src python benchmarks/smoke_fastpath.py
"""

import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).parent))

from bench_e10_transport_fastpath import (  # noqa: E402
    REPO_ROOT,
    assert_fastpath_shape,
)
from repro.bench.fastpath import (  # noqa: E402
    FastpathSpec,
    deterministic_view,
    run_burst,
    run_fastpath_sweep,
)
from repro.bench.harness import emit_json  # noqa: E402


def main() -> None:
    spec = FastpathSpec(seed=5, posts=200, burst=4)
    table, results = run_fastpath_sweep(spec)
    assert_fastpath_shape(results)
    probe = FastpathSpec(seed=31, posts=80, burst=4)
    first = deterministic_view(run_burst(probe, fastpath=True,
                                         bidirectional=True))
    again = deterministic_view(run_burst(probe, fastpath=True,
                                         bidirectional=True))
    assert first == again, "same-seed fast-path runs must be bit-identical"
    emit_json(table, REPO_ROOT / "BENCH_fastpath.json",
              experiment="fastpath", seed=spec.seed, posts=spec.posts,
              burst=spec.burst, group_size=spec.group_size,
              gap=spec.gap, link_latency=spec.link_latency, quick=True,
              results={w: {m: deterministic_view(r)
                           for m, r in modes.items()}
                       for w, modes in results.items()})
    print(table.render())
    burst_on, burst_off = results["burst"]["on"], results["burst"]["off"]
    print(f"\nsmoke OK: msgs/post {burst_off['msgs_per_post']} -> "
          f"{burst_on['msgs_per_post']}, acks/post "
          f"{burst_off['acks_per_post']} -> {burst_on['acks_per_post']}; "
          "identical delivery on/off; same-seed runs bit-identical")


if __name__ == "__main__":
    main()
