"""Shared fixtures for the benchmark suite.

Each benchmark runs one experiment from :mod:`repro.bench.experiments`,
asserts the *shape* the paper claims (who wins, how costs scale), and
records the rendered result table under ``benchmarks/results/`` so
EXPERIMENTS.md can quote real output.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture()
def record():
    """Persist an experiment's table and echo it to stdout."""

    def _record(name: str, table) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        text = table.render()
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n",
                                                 encoding="utf-8")
        print()
        print(text)

    return _record
