"""Legacy setup shim.

The execution environment has no ``wheel`` package and no network, so the
PEP 517 editable path (which shells out to ``bdist_wheel``) cannot run.
``python setup.py develop`` / ``pip install -e .`` fall back to this shim.
"""
from setuptools import setup

setup()
